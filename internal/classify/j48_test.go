package classify

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

// TestFigure4TreeRoot asserts the headline result of the paper's case study
// (Figure 4): on the breast-cancer data, C4.5 places node-caps at the root
// of the pruned decision tree, with further structure below it.
func TestFigure4TreeRoot(t *testing.T) {
	d := datagen.BreastCancer()
	j := NewJ48()
	if err := j.Train(d); err != nil {
		t.Fatalf("Train: %v", err)
	}
	root := j.Tree()
	if root == nil || root.Attr < 0 {
		t.Fatal("tree degenerated to a single leaf")
	}
	if root.AttrName != "node-caps" {
		t.Fatalf("root attribute = %q, want node-caps (Figure 4)", root.AttrName)
	}
	// Figure 4 shows structure below node-caps=yes (the deg-malig split).
	yesIdx := -1
	for i, lbl := range root.Labels {
		if lbl == "yes" {
			yesIdx = i
		}
	}
	if yesIdx < 0 {
		t.Fatalf("root labels = %v", root.Labels)
	}
	if root.Children[yesIdx].Attr < 0 {
		t.Fatal("node-caps=yes branch is a bare leaf; Figure 4 has a subtree there")
	}
	if got := root.Children[yesIdx].AttrName; got != "deg-malig" {
		t.Fatalf("subtree under node-caps=yes splits on %q, want deg-malig", got)
	}
	// The textual output (the classify operation's reply) mentions both.
	text := j.String()
	for _, want := range []string{"node-caps = yes", "node-caps = no", "deg-malig",
		"Number of Leaves", "Size of the tree"} {
		if !strings.Contains(text, want) {
			t.Fatalf("textual tree lacks %q:\n%s", want, text)
		}
	}
}

func TestJ48ContactLensesExact(t *testing.T) {
	// contact-lenses is a pure function of its attributes: an unpruned J48
	// must fit it perfectly, rooted at tear-prod-rate.
	d := datagen.ContactLenses()
	j := NewJ48()
	j.Unpruned = true
	j.MinLeaf = 1
	if err := j.Train(d); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if j.Tree().AttrName != "tear-prod-rate" {
		t.Fatalf("root = %q, want tear-prod-rate", j.Tree().AttrName)
	}
	ev, err := NewEvaluation(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.TestModel(j, d); err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy() != 1 {
		t.Fatalf("training accuracy = %v, want 1.0\n%s", ev.Accuracy(), j.String())
	}
}

func TestJ48WeatherOutlookRoot(t *testing.T) {
	// The canonical ID3/C4.5 example: weather.nominal roots at outlook.
	d := datagen.Weather()
	j := NewJ48()
	j.Unpruned = true
	j.MinLeaf = 1
	if err := j.Train(d); err != nil {
		t.Fatal(err)
	}
	if j.Tree().AttrName != "outlook" {
		t.Fatalf("root = %q, want outlook", j.Tree().AttrName)
	}
}

func TestJ48NumericSplit(t *testing.T) {
	d := datagen.WeatherNumeric()
	j := NewJ48()
	j.Unpruned = true
	j.MinLeaf = 1
	if err := j.Train(d); err != nil {
		t.Fatal(err)
	}
	// Must classify its own training data well despite numeric attributes.
	ev, _ := NewEvaluation(d)
	if err := ev.TestModel(j, d); err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy() < 0.85 {
		t.Fatalf("training accuracy = %v\n%s", ev.Accuracy(), j.String())
	}
	// The tree must contain at least one threshold split.
	found := false
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n == nil {
			return
		}
		if n.Attr >= 0 && n.Numeric {
			found = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(j.Tree())
	if !found {
		t.Fatalf("no numeric split in tree:\n%s", j.String())
	}
}

func TestJ48MissingValuesAtPrediction(t *testing.T) {
	d := datagen.BreastCancer()
	j := NewJ48()
	if err := j.Train(d); err != nil {
		t.Fatal(err)
	}
	// All-missing instance: distribution must still be valid.
	vals := make([]float64, d.NumAttributes())
	for i := range vals {
		vals[i] = dataset.Missing
	}
	dist, err := j.Distribution(dataset.NewInstance(vals))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range dist {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func TestJ48PruningReducesSize(t *testing.T) {
	d := datagen.BreastCancer()
	pruned := NewJ48()
	if err := pruned.Train(d); err != nil {
		t.Fatal(err)
	}
	unpruned := NewJ48()
	unpruned.Unpruned = true
	if err := unpruned.Train(d); err != nil {
		t.Fatal(err)
	}
	if pruned.TreeSize() >= unpruned.TreeSize() {
		t.Fatalf("pruning did not shrink the tree: %d >= %d",
			pruned.TreeSize(), unpruned.TreeSize())
	}
}

func TestJ48Options(t *testing.T) {
	j := NewJ48()
	if err := j.SetOption("confidenceFactor", "0.1"); err != nil {
		t.Fatal(err)
	}
	if j.ConfidenceFactor != 0.1 {
		t.Fatal("confidenceFactor not applied")
	}
	if err := j.SetOption("minLeaf", "5"); err != nil {
		t.Fatal(err)
	}
	if err := j.SetOption("unpruned", "true"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]string{
		{"confidenceFactor", "0"}, {"confidenceFactor", "0.9"}, {"confidenceFactor", "x"},
		{"minLeaf", "0"}, {"unpruned", "maybe"}, {"nonsense", "1"},
	} {
		if err := j.SetOption(bad[0], bad[1]); err == nil {
			t.Errorf("SetOption(%q,%q) accepted", bad[0], bad[1])
		}
	}
	if len(j.Options()) != 4 {
		t.Fatalf("Options() lists %d options", len(j.Options()))
	}
	if err := j.SetOption("useInfoGain", "true"); err != nil {
		t.Fatal(err)
	}
	if !j.UseInfoGain {
		t.Fatal("useInfoGain not applied")
	}
}

func TestJ48UntrainedErrors(t *testing.T) {
	j := NewJ48()
	if _, err := j.Distribution(dataset.NewInstance([]float64{0})); err == nil {
		t.Fatal("untrained Distribution succeeded")
	}
	empty := dataset.New("e", dataset.NewNominalAttribute("c", "a", "b"))
	empty.ClassIndex = 0
	if err := j.Train(empty); err == nil {
		t.Fatal("training on empty dataset succeeded")
	}
}

func TestJ48TrainRejectsNumericClass(t *testing.T) {
	d := dataset.New("r", dataset.NewNumericAttribute("x"), dataset.NewNumericAttribute("y"))
	d.ClassIndex = 1
	d.MustAdd(dataset.NewInstance([]float64{1, 2}))
	if err := NewJ48().Train(d); err == nil {
		t.Fatal("numeric class accepted")
	}
}

func TestAddErrsMatchesC45Properties(t *testing.T) {
	// Zero observed errors still add pessimistic mass.
	if got := addErrs(10, 0, 0.25); got <= 0 {
		t.Fatalf("addErrs(10,0) = %v, want > 0", got)
	}
	// More confidence (larger CF) means fewer added errors.
	loose := addErrs(100, 10, 0.5)
	tight := addErrs(100, 10, 0.1)
	if tight <= loose {
		t.Fatalf("tight CF should add more errors: %v <= %v", tight, loose)
	}
	// addErrs is bounded by the remaining instances.
	if got := addErrs(10, 9.8, 0.25); got > 0.3 {
		t.Fatalf("addErrs near saturation = %v", got)
	}
}

func TestNormalInverse(t *testing.T) {
	cases := map[float64]float64{0.5: 0, 0.975: 1.959964, 0.025: -1.959964, 0.75: 0.674490}
	for p, want := range cases {
		got := normalInverse(p)
		if got < want-1e-4 || got > want+1e-4 {
			t.Errorf("normalInverse(%v) = %v, want %v", p, got, want)
		}
	}
}

// TestSplitCriterionAblation: with raw information gain (the ID3 bias), the
// many-valued tumor-size/inv-nodes attributes become competitive with
// node-caps; gain ratio's split-information penalty is what keeps the
// Figure-4 root on the binary node-caps attribute.
func TestSplitCriterionAblation(t *testing.T) {
	d := datagen.BreastCancer()
	ratio := NewJ48()
	if err := ratio.Train(d); err != nil {
		t.Fatal(err)
	}
	ig := NewJ48()
	ig.UseInfoGain = true
	if err := ig.Train(d); err != nil {
		t.Fatal(err)
	}
	if ratio.Tree().AttrName != "node-caps" {
		t.Fatalf("gain-ratio root = %q", ratio.Tree().AttrName)
	}
	// Both criteria must still learn something useful.
	for _, j := range []*J48{ratio, ig} {
		ev, err := NewEvaluation(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.TestModel(j, d); err != nil {
			t.Fatal(err)
		}
		if ev.Accuracy() <= 201.0/286 {
			t.Fatalf("criterion failed to beat baseline: %v", ev.Accuracy())
		}
	}
}
