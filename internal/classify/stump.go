package classify

import (
	"fmt"

	"repro/internal/dataset"
)

// DecisionStump is a one-level decision tree (single J48 split), the classic
// weak learner for boosting.
type DecisionStump struct {
	inner *J48
}

func init() { Register("DecisionStump", func() Classifier { return &DecisionStump{} }) }

// Name implements Classifier.
func (s *DecisionStump) Name() string { return "DecisionStump" }

// Train implements Classifier.
func (s *DecisionStump) Train(d *dataset.Dataset) error {
	j := NewJ48()
	j.Unpruned = true
	j.MinLeaf = 1
	if err := j.Train(d); err != nil {
		return err
	}
	// Truncate to depth one: every child of the root becomes a leaf.
	if r := j.Tree(); r != nil && r.Attr >= 0 {
		for _, c := range r.Children {
			c.Attr = -1
			c.AttrName = ""
			c.Children = nil
			c.Labels = nil
		}
	}
	s.inner = j
	return nil
}

// Distribution implements Classifier.
func (s *DecisionStump) Distribution(in *dataset.Instance) ([]float64, error) {
	if s.inner == nil {
		return nil, fmt.Errorf("classify: DecisionStump is untrained")
	}
	return s.inner.Distribution(in)
}

// Attribute returns the splitting column of the stump, or -1 when the stump
// degenerated to a single leaf.
func (s *DecisionStump) Attribute() int {
	if s.inner == nil || s.inner.Tree() == nil {
		return -1
	}
	return s.inner.Tree().Attr
}
