package classify

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func trainAcc(t *testing.T, c Classifier, d *dataset.Dataset) float64 {
	t.Helper()
	if err := c.Train(d); err != nil {
		t.Fatalf("%s.Train: %v", c.Name(), err)
	}
	ev, err := NewEvaluation(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.TestModel(c, d); err != nil {
		t.Fatalf("%s eval: %v", c.Name(), err)
	}
	return ev.Accuracy()
}

func TestRegistryListsAllFamilies(t *testing.T) {
	names := Names()
	want := []string{"AdaBoostM1", "Bagging", "DecisionStump", "IBk", "J48",
		"Logistic", "MultilayerPerceptron", "NaiveBayes", "OneR", "Prism",
		"RandomForest", "RandomTree", "ZeroR"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d classifiers: %v", len(names), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registry[%d] = %q, want %q (sorted)", i, names[i], n)
		}
	}
	for _, n := range names {
		c, err := New(n)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if c.Name() != n {
			t.Fatalf("New(%s).Name() = %q", n, c.Name())
		}
	}
	if _, err := New("C5.0"); err == nil {
		t.Fatal("unknown classifier constructed")
	}
}

func TestOptionsForEveryClassifier(t *testing.T) {
	for _, n := range Names() {
		opts, err := OptionsFor(n)
		if err != nil {
			t.Fatalf("OptionsFor(%s): %v", n, err)
		}
		for _, o := range opts {
			if o.Name == "" || o.Description == "" {
				t.Fatalf("%s has an anonymous option: %+v", n, o)
			}
		}
	}
}

func TestConfigure(t *testing.T) {
	c, _ := New("IBk")
	if err := Configure(c, map[string]string{"k": "3"}); err != nil {
		t.Fatal(err)
	}
	if c.(*IBk).K != 3 {
		t.Fatal("option not applied")
	}
	if err := Configure(c, map[string]string{"bogus": "1"}); err == nil {
		t.Fatal("unknown option accepted")
	}
	z, _ := New("ZeroR")
	if err := Configure(z, map[string]string{"x": "1"}); err == nil {
		t.Fatal("options accepted by option-less classifier")
	}
	if err := Configure(z, nil); err != nil {
		t.Fatal("empty options rejected")
	}
}

func TestZeroRPredictsMajority(t *testing.T) {
	d := datagen.BreastCancer() // 201 vs 85
	z := &ZeroR{}
	if err := z.Train(d); err != nil {
		t.Fatal(err)
	}
	p, err := Predict(z, d.Instances[0])
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("ZeroR predicts %d, want majority class 0", p)
	}
	dist, _ := z.Distribution(d.Instances[0])
	if math.Abs(dist[0]-201.0/286) > 1e-9 {
		t.Fatalf("prior = %v", dist)
	}
}

func TestZeroRIncremental(t *testing.T) {
	d := datagen.Weather()
	z := &ZeroR{}
	if err := z.Begin(d); err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Instances {
		if err := z.Update(in); err != nil {
			t.Fatal(err)
		}
	}
	batch := &ZeroR{}
	if err := batch.Train(d); err != nil {
		t.Fatal(err)
	}
	di, _ := z.Distribution(d.Instances[0])
	db, _ := batch.Distribution(d.Instances[0])
	for i := range di {
		if math.Abs(di[i]-db[i]) > 1e-12 {
			t.Fatalf("incremental %v != batch %v", di, db)
		}
	}
}

func TestOneRPicksMostPredictiveAttribute(t *testing.T) {
	d := datagen.BreastCancer()
	r := &OneR{minBucket: 6}
	if err := r.Train(d); err != nil {
		t.Fatal(err)
	}
	// node-caps (col 4) and deg-malig (col 5) are the informative columns.
	if a := r.Attribute(); a != 4 && a != 5 {
		t.Fatalf("OneR chose column %d (%s)", a, d.Attrs[a].Name)
	}
	if acc := trainAcc(t, &OneR{minBucket: 6}, d); acc <= 201.0/286 {
		t.Fatalf("OneR accuracy %v no better than ZeroR", acc)
	}
}

func TestOneRNumeric(t *testing.T) {
	// A numeric attribute perfectly split at 0 must be learnable.
	d := dataset.New("n", dataset.NewNumericAttribute("x"),
		dataset.NewNominalAttribute("c", "neg", "pos"))
	d.ClassIndex = 1
	for i := -20; i < 20; i++ {
		cls := 0.0
		if i >= 0 {
			cls = 1
		}
		d.MustAdd(dataset.NewInstance([]float64{float64(i), cls}))
	}
	r := &OneR{minBucket: 6}
	if acc := trainAcc(t, r, d); acc != 1 {
		t.Fatalf("OneR accuracy on linearly separable numeric data = %v", acc)
	}
}

func TestNaiveBayesBeatsBaseline(t *testing.T) {
	d := datagen.BreastCancer()
	acc := trainAcc(t, &NaiveBayes{}, d)
	if acc <= 201.0/286.0 {
		t.Fatalf("NaiveBayes accuracy %v not above majority baseline", acc)
	}
}

func TestNaiveBayesIncrementalEqualsBatch(t *testing.T) {
	d := datagen.WeatherNumeric()
	inc := &NaiveBayes{}
	if err := inc.Begin(d); err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Instances {
		if err := inc.Update(in); err != nil {
			t.Fatal(err)
		}
	}
	batch := &NaiveBayes{}
	if err := batch.Train(d); err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Instances {
		di, _ := inc.Distribution(in)
		db, _ := batch.Distribution(in)
		for i := range di {
			if math.Abs(di[i]-db[i]) > 1e-9 {
				t.Fatalf("incremental %v != batch %v", di, db)
			}
		}
	}
}

func TestNaiveBayesGaussianLikelihood(t *testing.T) {
	// Two well-separated numeric classes: NB must be near-perfect.
	d := datagen.GaussianClusters(2, 200, 2, 8, 23)
	if acc := trainAcc(t, &NaiveBayes{}, d); acc < 0.99 {
		t.Fatalf("NB on separated gaussians = %v", acc)
	}
}

func TestIBkNearestNeighbour(t *testing.T) {
	d := datagen.GaussianClusters(2, 100, 2, 8, 29)
	k := &IBk{K: 1}
	if acc := trainAcc(t, k, d); acc != 1 {
		t.Fatalf("1-NN training accuracy = %v, want 1 (self-match)", acc)
	}
	if k.NumCases() != 100 {
		t.Fatalf("case base = %d", k.NumCases())
	}
	k3 := &IBk{K: 3, DistanceWeight: true}
	if acc := trainAcc(t, k3, d); acc < 0.97 {
		t.Fatalf("3-NN accuracy = %v", acc)
	}
}

func TestIBkMixedAttributes(t *testing.T) {
	d := datagen.Weather()
	if acc := trainAcc(t, &IBk{K: 1}, d); acc != 1 {
		t.Fatalf("1-NN on nominal data = %v", acc)
	}
}

func TestLogisticSeparable(t *testing.T) {
	d := datagen.GaussianClusters(2, 200, 2, 6, 31)
	l := &Logistic{Epochs: 50, LearningRate: 0.1, Lambda: 1e-4, Seed: 1}
	if acc := trainAcc(t, l, d); acc < 0.98 {
		t.Fatalf("logistic on separable data = %v", acc)
	}
}

func TestLogisticMulticlass(t *testing.T) {
	d := datagen.IrisLike(40, 37)
	l := &Logistic{Epochs: 80, LearningRate: 0.1, Lambda: 1e-4, Seed: 1}
	if acc := trainAcc(t, l, d); acc < 0.9 {
		t.Fatalf("logistic on iris-like = %v", acc)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// XOR is not linearly separable; a hidden layer is required — the
	// sharpest functional test of backpropagation.
	d := dataset.New("xor",
		dataset.NewNumericAttribute("a"),
		dataset.NewNumericAttribute("b"),
		dataset.NewNominalAttribute("c", "off", "on"))
	d.ClassIndex = 2
	for i := 0; i < 40; i++ {
		a, b := float64(i%2), float64((i/2)%2)
		cls := 0.0
		if a != b {
			cls = 1
		}
		d.MustAdd(dataset.NewInstance([]float64{a, b, cls}))
	}
	m := &MLP{Hidden: 8, LearningRate: 0.5, Momentum: 0.2, Epochs: 600, Seed: 3}
	if acc := trainAcc(t, m, d); acc != 1 {
		t.Fatalf("MLP on XOR = %v, want 1.0", acc)
	}
}

func TestMLPOptionsMatchPaper(t *testing.T) {
	// §4.4: "the number of neurons in the hidden layer, the momentum and
	// the learning rate" must be exposed as run-time options.
	m := &MLP{}
	names := map[string]bool{}
	for _, o := range m.Options() {
		names[o.Name] = true
	}
	for _, want := range []string{"hiddenNeurons", "momentum", "learningRate"} {
		if !names[want] {
			t.Fatalf("MLP options lack %q (have %v)", want, names)
		}
	}
}

func TestDecisionStumpSingleSplit(t *testing.T) {
	d := datagen.BreastCancer()
	s := &DecisionStump{}
	if err := s.Train(d); err != nil {
		t.Fatal(err)
	}
	if s.Attribute() < 0 {
		t.Fatal("stump degenerated to a leaf")
	}
	if got := d.Attrs[s.Attribute()].Name; got != "node-caps" && got != "deg-malig" {
		t.Fatalf("stump splits on %q", got)
	}
}

func TestRandomTreeAndForest(t *testing.T) {
	d := datagen.IrisLike(40, 41)
	rt := &RandomTree{Seed: 1, MinLeaf: 1}
	if acc := trainAcc(t, rt, d); acc < 0.9 {
		t.Fatalf("RandomTree = %v", acc)
	}
	f, _ := New("RandomForest")
	if acc := trainAcc(t, f, d); acc < 0.95 {
		t.Fatalf("RandomForest = %v", acc)
	}
}

func TestBaggingImprovesOverSingleTree(t *testing.T) {
	d := datagen.RandomNominal(300, 8, 3, 0.25, 43)
	cvTree, err := CrossValidateContext(context.Background(), func() Classifier {
		j := NewJ48()
		j.Unpruned = true
		return j
	}, d, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cvBag, err := CrossValidateContext(context.Background(), func() Classifier {
		return &Bagging{Size: 15, Seed: 1}
	}, d, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bagging should not be dramatically worse; usually better on noisy data.
	if cvBag.Accuracy() < cvTree.Accuracy()-0.05 {
		t.Fatalf("bagging %v much worse than tree %v", cvBag.Accuracy(), cvTree.Accuracy())
	}
}

func TestAdaBoostBeatsStump(t *testing.T) {
	d := datagen.BreastCancer()
	stumpCV, err := CrossValidateContext(context.Background(), func() Classifier { return &DecisionStump{} }, d, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	boostCV, err := CrossValidateContext(context.Background(), func() Classifier { return &AdaBoostM1{Rounds: 15, Seed: 2} }, d, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if boostCV.Accuracy() < stumpCV.Accuracy()-0.03 {
		t.Fatalf("boosting %v worse than its stump %v", boostCV.Accuracy(), stumpCV.Accuracy())
	}
}

// TestDistributionProperty: every trained classifier returns a valid
// probability distribution for arbitrary (even partially missing) inputs.
func TestDistributionProperty(t *testing.T) {
	d := datagen.WeatherNumeric()
	models := []Classifier{}
	for _, n := range []string{"ZeroR", "OneR", "NaiveBayes", "J48", "IBk", "DecisionStump"} {
		c, _ := New(n)
		if err := c.Train(d); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		models = append(models, c)
	}
	f := func(outlook, temp, humid uint8, windy bool, missMask uint8) bool {
		vals := []float64{
			float64(outlook % 3),
			float64(temp%40) + 50,
			float64(humid%40) + 60,
			0,
			dataset.Missing,
		}
		if windy {
			vals[3] = 1
		}
		for bit := 0; bit < 4; bit++ {
			if missMask&(1<<bit) != 0 {
				vals[bit] = dataset.Missing
			}
		}
		in := dataset.NewInstance(vals)
		for _, m := range models {
			dist, err := m.Distribution(in)
			if err != nil {
				return false
			}
			var sum float64
			for _, p := range dist {
				if p < -1e-9 || math.IsNaN(p) {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
