package classify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// BatchScorer is implemented by classifiers with a columnar fast path:
// DistributionBatch scores every row of d in one call, iterating the
// dataset's contiguous column slices instead of per-instance row walks.
// Implementations must produce bit-identical distributions to calling
// Distribution row by row — the batch path is an optimisation, never a
// different model.
type BatchScorer interface {
	DistributionBatch(d *dataset.Dataset) ([][]float64, error)
}

// PredictBatch scores every row of d with c, returning the per-row
// predicted label index and the distribution it was taken from. It uses
// the classifier's columnar fast path when it implements BatchScorer
// and falls back to a row loop otherwise; the argmax is first-max-wins,
// exactly as Predict.
func PredictBatch(c Classifier, d *dataset.Dataset) ([]int, [][]float64, error) {
	var dists [][]float64
	if bs, ok := c.(BatchScorer); ok {
		var err error
		dists, err = bs.DistributionBatch(d)
		if err != nil {
			return nil, nil, err
		}
	} else {
		dists = make([][]float64, d.NumInstances())
		for i, in := range d.Instances {
			dist, err := c.Distribution(in)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d: %w", i, err)
			}
			dists[i] = dist
		}
	}
	labels := make([]int, len(dists))
	for i, dist := range dists {
		if len(dist) == 0 {
			return nil, nil, fmt.Errorf("classify: %s returned an empty distribution for row %d", c.Name(), i)
		}
		best, bestP := 0, dist[0]
		for l, p := range dist {
			if p > bestP {
				best, bestP = l, p
			}
		}
		labels[i] = best
	}
	return labels, dists, nil
}

// DistributionBatch implements BatchScorer for IBk. The case base is
// transposed into column slices once per call; distances then
// accumulate column-outer over all cases, which reads each case column
// contiguously while preserving the per-(query,case) accumulation order
// of distance() — same additions, same order, bit-identical results.
func (k *IBk) DistributionBatch(d *dataset.Dataset) ([][]float64, error) {
	if len(k.cases) == 0 {
		return nil, fmt.Errorf("classify: IBk is untrained")
	}
	cols := d.Columns()
	nq, nc := d.NumInstances(), len(k.cases)
	m := k.schema.NumAttributes()
	if len(cols) < m {
		return nil, fmt.Errorf("classify: IBk batch has %d attributes, model expects %d", len(cols), m)
	}

	// Transpose the case base once; caseCls caches the class of each case.
	caseSlab := make([]float64, nc*m)
	caseCols := make([][]float64, m)
	for col := range caseCols {
		caseCols[col] = caseSlab[col*nc : (col+1)*nc]
	}
	caseCls := make([]int, nc)
	for j, c := range k.cases {
		for col := 0; col < m; col++ {
			caseCols[col][j] = c.Values[col]
		}
		caseCls[j] = int(c.Values[k.schema.ClassIndex])
	}

	out := make([][]float64, nq)
	dists := make([]float64, nc)
	for i := 0; i < nq; i++ {
		for j := range dists {
			dists[j] = 0
		}
		// Column-outer accumulation: per case the contributions still
		// arrive in increasing column order, matching distance().
		for col, a := range k.schema.Attrs {
			if col == k.schema.ClassIndex {
				continue
			}
			qv := cols[col][i]
			qm := dataset.IsMissing(qv)
			cc := caseCols[col]
			switch {
			case a.IsNumeric():
				span := k.max[col] - k.min[col]
				for j, cv := range cc {
					if qm || dataset.IsMissing(cv) {
						dists[j]++
						continue
					}
					if span <= 0 {
						continue
					}
					diff := (qv - cv) / span
					dists[j] += diff * diff
				}
			default:
				for j, cv := range cc {
					if qm || dataset.IsMissing(cv) {
						dists[j]++
						continue
					}
					if qv != cv {
						dists[j]++
					}
				}
			}
		}
		out[i] = k.voteSorted(dists, caseCls)
	}
	return out, nil
}

// voteSorted finishes an IBk query from raw squared distances: sqrt,
// sort, top-K vote — the same code shape as the tail of Distribution.
func (k *IBk) voteSorted(sq []float64, cls []int) []float64 {
	type nb struct {
		dist float64
		cls  int
	}
	nbs := make([]nb, len(sq))
	for j := range sq {
		nbs[j] = nb{math.Sqrt(sq[j]), cls[j]}
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].dist < nbs[j].dist })
	kk := k.K
	if kk > len(nbs) {
		kk = len(nbs)
	}
	out := make([]float64, k.schema.NumClasses())
	for i := 0; i < kk; i++ {
		w := 1.0
		if k.DistanceWeight {
			w = 1 / (nbs[i].dist + 1e-9)
		}
		out[nbs[i].cls] += w
	}
	return normalize(out)
}

// DistributionBatch implements BatchScorer for NaiveBayes. Per-(column,
// class) statistics — nominal row mass, Gaussian mean/variance — are
// computed once per batch instead of once per row; the per-row log-
// likelihood additions then happen in exactly Distribution's order
// (prior first, then columns ascending), so results are bit-identical.
func (nb *NaiveBayes) DistributionBatch(d *dataset.Dataset) ([][]float64, error) {
	if nb.classCount == nil {
		return nil, fmt.Errorf("classify: NaiveBayes is untrained")
	}
	cols := d.Columns()
	n := d.NumInstances()

	var totalW float64
	for _, w := range nb.classCount {
		totalW += w
	}
	logPrior := make([]float64, nb.numClasses)
	for c := range logPrior {
		logPrior[c] = math.Log((nb.classCount[c] + 1) / (totalW + float64(nb.numClasses)))
	}

	// Per-(col,class) precomputation, sharing Distribution's expressions.
	type gauss struct {
		ok             bool
		mean, variance float64
		logNorm        float64 // -0.5*log(2*pi*variance)
	}
	nomMass := make([][]float64, len(nb.attrs)) // rowW + k per class
	gaussCC := make([][]gauss, len(nb.attrs))
	for col, a := range nb.attrs {
		if col == nb.classIndex || col >= len(cols) {
			continue
		}
		switch {
		case a.IsNominal():
			nomMass[col] = make([]float64, nb.numClasses)
			for c := 0; c < nb.numClasses; c++ {
				row := nb.nominal[col][c]
				var rowW float64
				for _, w := range row {
					rowW += w
				}
				nomMass[col][c] = rowW + float64(len(row))
			}
		case a.IsNumeric():
			gaussCC[col] = make([]gauss, nb.numClasses)
			for c := 0; c < nb.numClasses; c++ {
				cnt := nb.cnt[col][c]
				if cnt < 2 {
					continue
				}
				mean := nb.sum[col][c] / cnt
				variance := nb.sumSq[col][c]/cnt - mean*mean
				if variance < 1e-6 {
					variance = 1e-6
				}
				gaussCC[col][c] = gauss{
					ok:       true,
					mean:     mean,
					variance: variance,
					logNorm:  -0.5 * math.Log(2*math.Pi*variance),
				}
			}
		}
	}

	out := make([][]float64, n)
	logp := make([]float64, nb.numClasses)
	for i := 0; i < n; i++ {
		for c := 0; c < nb.numClasses; c++ {
			lp := logPrior[c]
			for col, a := range nb.attrs {
				if col == nb.classIndex || col >= len(cols) {
					continue
				}
				v := cols[col][i]
				if dataset.IsMissing(v) {
					continue
				}
				switch {
				case a.IsNominal():
					lp += math.Log((nb.nominal[col][c][int(v)] + 1) / nomMass[col][c])
				case a.IsNumeric():
					g := gaussCC[col][c]
					if !g.ok {
						continue
					}
					diff := v - g.mean
					lp += g.logNorm - diff*diff/(2*g.variance)
				}
			}
			logp[c] = lp
		}
		// Soft-max in log space, exactly as Distribution.
		maxLog := math.Inf(-1)
		for _, lp := range logp {
			if lp > maxLog {
				maxLog = lp
			}
		}
		row := make([]float64, nb.numClasses)
		for c, lp := range logp {
			row[c] = math.Exp(lp - maxLog)
		}
		out[i] = normalize(row)
	}
	return out, nil
}
