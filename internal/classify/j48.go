package classify

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// J48 is a C4.5 decision-tree learner: gain-ratio attribute selection,
// multiway splits on nominal attributes, binary splits on numeric
// attributes, fractional-weight handling of missing values, and pessimistic
// (confidence-factor) subtree-replacement pruning. It is the algorithm
// behind the paper's J48 Web Service and the case study of §5 (Figure 4).
type J48 struct {
	// ConfidenceFactor is the pruning confidence (C4.5's CF, default 0.25);
	// smaller values prune more aggressively.
	ConfidenceFactor float64
	// MinLeaf is the minimum instance weight required in at least two
	// branches of a split (C4.5's -M, default 2).
	MinLeaf float64
	// Unpruned disables pruning when true.
	Unpruned bool
	// UseInfoGain selects raw information gain instead of C4.5's gain
	// ratio as the split criterion (an ID3-style ablation; biased towards
	// many-valued attributes).
	UseInfoGain bool

	root       *TreeNode
	classAttr  *dataset.Attribute
	classIndex int
}

// TreeNode is one node of a trained decision tree. Fields are exported so
// trees survive gob serialisation (the §4.5 harness experiment round-trips
// trained models through their serialised state).
type TreeNode struct {
	// Attr is the splitting column, or -1 for a leaf.
	Attr int
	// AttrName is the splitting attribute's name ("" for a leaf).
	AttrName string
	// Numeric marks a binary numeric split: Children[0] holds values <=
	// Threshold, Children[1] the rest.
	Numeric   bool
	Threshold float64
	// Labels holds, for nominal splits, the branch value names parallel to
	// Children.
	Labels   []string
	Children []*TreeNode
	// Dist is the training class-weight distribution at this node.
	Dist []float64
	// ClassIdx / ClassName identify the majority class at this node.
	ClassIdx  int
	ClassName string
}

func init() {
	Register("J48", func() Classifier { return NewJ48() })
}

// NewJ48 returns a J48 with C4.5's default parameters.
func NewJ48() *J48 {
	return &J48{ConfidenceFactor: 0.25, MinLeaf: 2}
}

// Name implements Classifier.
func (j *J48) Name() string { return "J48" }

// Options implements Parameterized, mirroring WEKA's -C and -M flags.
func (j *J48) Options() []Option {
	return []Option{
		{Name: "confidenceFactor", Description: "pruning confidence factor (smaller prunes more)", Default: "0.25"},
		{Name: "minLeaf", Description: "minimum instance weight per split branch", Default: "2"},
		{Name: "unpruned", Description: "disable pruning (true/false)", Default: "false"},
		{Name: "useInfoGain", Description: "split on information gain instead of gain ratio (true/false)", Default: "false"},
	}
}

// SetOption implements Parameterized.
func (j *J48) SetOption(name, value string) error {
	switch name {
	case "confidenceFactor":
		f, err := strconv.ParseFloat(value, 64)
		if err != nil || f <= 0 || f > 0.5 {
			return fmt.Errorf("classify: J48 confidenceFactor must be in (0,0.5], got %q", value)
		}
		j.ConfidenceFactor = f
	case "minLeaf":
		f, err := strconv.ParseFloat(value, 64)
		if err != nil || f < 1 {
			return fmt.Errorf("classify: J48 minLeaf must be >= 1, got %q", value)
		}
		j.MinLeaf = f
	case "unpruned":
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("classify: J48 unpruned must be boolean, got %q", value)
		}
		j.Unpruned = b
	case "useInfoGain":
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("classify: J48 useInfoGain must be boolean, got %q", value)
		}
		j.UseInfoGain = b
	default:
		return fmt.Errorf("classify: J48 has no option %q", name)
	}
	return nil
}

// Train implements Classifier.
func (j *J48) Train(d *dataset.Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	d = d.DeleteWithMissingClass()
	if d.NumInstances() == 0 {
		return fmt.Errorf("classify: J48: every instance has a missing class")
	}
	j.classAttr = d.ClassAttribute()
	j.classIndex = d.ClassIndex
	// Work on cloned instances: missing-value handling mutates weights.
	work := make([]*dataset.Instance, d.NumInstances())
	for i, in := range d.Instances {
		work[i] = in.Clone()
	}
	j.root = j.grow(d, work)
	if !j.Unpruned {
		j.prune(j.root)
	}
	return nil
}

// grow builds the subtree over instances ins.
func (j *J48) grow(d *dataset.Dataset, ins []*dataset.Instance) *TreeNode {
	node := &TreeNode{Attr: -1, Dist: classDist(ins, j.classIndex, j.classAttr.NumValues())}
	node.ClassIdx = maxIdx(node.Dist)
	node.ClassName = j.classAttr.Value(node.ClassIdx)

	total := sum(node.Dist)
	if total < 2*j.MinLeaf || node.Dist[node.ClassIdx] == total {
		return node // too small or pure
	}
	attr, threshold, gainOK := j.selectSplit(d, ins)
	if !gainOK {
		return node
	}
	a := d.Attrs[attr]
	branches, labels := j.partition(d, ins, attr, threshold)
	// Require at least two branches with MinLeaf weight (C4.5's -M).
	nonTrivial := 0
	for _, b := range branches {
		if weightOf(b) >= j.MinLeaf {
			nonTrivial++
		}
	}
	if nonTrivial < 2 {
		return node
	}
	node.Attr = attr
	node.AttrName = a.Name
	node.Numeric = a.IsNumeric()
	node.Threshold = threshold
	node.Labels = labels
	node.Children = make([]*TreeNode, len(branches))
	for i, b := range branches {
		if len(b) == 0 {
			// Empty branch: leaf predicting the parent majority.
			leaf := &TreeNode{Attr: -1, Dist: make([]float64, len(node.Dist))}
			leaf.ClassIdx = node.ClassIdx
			leaf.ClassName = node.ClassName
			node.Children[i] = leaf
			continue
		}
		node.Children[i] = j.grow(d, b)
	}
	return node
}

// selectSplit chooses the attribute (and numeric threshold) with the best
// gain ratio among attributes whose information gain is at least the mean
// positive gain, per C4.5.
func (j *J48) selectSplit(d *dataset.Dataset, ins []*dataset.Instance) (attr int, threshold float64, ok bool) {
	type cand struct {
		attr      int
		threshold float64
		gain      float64
		ratio     float64
	}
	var cands []cand
	baseH := dataset.Entropy(classDist(ins, j.classIndex, j.classAttr.NumValues()))
	totalW := weightOf(ins)
	for col, a := range d.Attrs {
		if col == j.classIndex || a.IsString() {
			continue
		}
		var g, si, th float64
		if a.IsNominal() {
			g, si = j.nominalGain(ins, col, a.NumValues(), baseH, totalW)
		} else {
			g, si, th = j.numericGain(ins, col, baseH, totalW)
		}
		if g <= 1e-9 || si <= 1e-9 {
			continue
		}
		ratio := g / si
		if j.UseInfoGain {
			ratio = g
		}
		cands = append(cands, cand{col, th, g, ratio})
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	var meanGain float64
	for _, c := range cands {
		meanGain += c.gain
	}
	meanGain /= float64(len(cands))
	best := -1
	for i, c := range cands {
		if c.gain+1e-12 < meanGain {
			continue
		}
		if best < 0 || c.ratio > cands[best].ratio {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return cands[best].attr, cands[best].threshold, true
}

// nominalGain returns the information gain and split information of a
// multiway split on nominal column col. Missing values are excluded from
// the gain computation and their mass reduces the gain proportionally
// (C4.5's treatment).
func (j *J48) nominalGain(ins []*dataset.Instance, col, numValues int, baseH, totalW float64) (gain, splitInfo float64) {
	k := j.classAttr.NumValues()
	byValue := make([][]float64, numValues)
	for i := range byValue {
		byValue[i] = make([]float64, k)
	}
	var knownW float64
	for _, in := range ins {
		v := in.Values[col]
		if dataset.IsMissing(v) {
			continue
		}
		byValue[int(v)][int(in.Values[j.classIndex])] += in.Weight
		knownW += in.Weight
	}
	if knownW <= 0 {
		return 0, 0
	}
	var condH float64
	for _, row := range byValue {
		w := sum(row)
		if w > 0 {
			condH += w / knownW * dataset.Entropy(row)
			p := w / knownW
			splitInfo -= p * math.Log2(p)
		}
	}
	gain = (knownW / totalW) * (baseH - condH)
	return gain, splitInfo
}

// numericGain finds the best binary threshold on numeric column col and
// returns its gain, split information and threshold.
func (j *J48) numericGain(ins []*dataset.Instance, col int, baseH, totalW float64) (gain, splitInfo, threshold float64) {
	k := j.classAttr.NumValues()
	type pt struct{ v, cls, w float64 }
	var pts []pt
	for _, in := range ins {
		v := in.Values[col]
		if dataset.IsMissing(v) {
			continue
		}
		pts = append(pts, pt{v, in.Values[j.classIndex], in.Weight})
	}
	if len(pts) < 2 {
		return 0, 0, 0
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].v < pts[j].v })
	knownW := 0.0
	right := make([]float64, k)
	for _, p := range pts {
		right[int(p.cls)] += p.w
		knownW += p.w
	}
	left := make([]float64, k)
	bestGain, bestTh := -1.0, 0.0
	var leftW float64
	for i := 0; i+1 < len(pts); i++ {
		left[int(pts[i].cls)] += pts[i].w
		right[int(pts[i].cls)] -= pts[i].w
		leftW += pts[i].w
		if pts[i].v == pts[i+1].v {
			continue
		}
		if leftW < j.MinLeaf || knownW-leftW < j.MinLeaf {
			continue
		}
		condH := leftW/knownW*dataset.Entropy(left) + (knownW-leftW)/knownW*dataset.Entropy(right)
		g := baseH - condH
		if g > bestGain {
			bestGain = g
			bestTh = (pts[i].v + pts[i+1].v) / 2
		}
	}
	if bestGain <= 0 {
		return 0, 0, 0
	}
	// C4.5 penalises numeric splits by log2(#candidates)/N.
	distinct := 1
	for i := 1; i < len(pts); i++ {
		if pts[i].v != pts[i-1].v {
			distinct++
		}
	}
	bestGain -= math.Log2(float64(distinct-1)) / knownW
	if bestGain <= 0 {
		return 0, 0, 0
	}
	// Split info of the induced binary partition.
	var lw float64
	for _, p := range pts {
		if p.v <= bestTh {
			lw += p.w
		}
	}
	for _, w := range []float64{lw, knownW - lw} {
		if w > 0 {
			p := w / knownW
			splitInfo -= p * math.Log2(p)
		}
	}
	gain = (knownW / totalW) * bestGain
	return gain, splitInfo, bestTh
}

// partition splits ins on attribute attr; instances with a missing value are
// distributed to every branch with proportionally reduced weight (C4.5's
// fractional instances).
func (j *J48) partition(d *dataset.Dataset, ins []*dataset.Instance, attr int, threshold float64) ([][]*dataset.Instance, []string) {
	a := d.Attrs[attr]
	var nBranch int
	var labels []string
	if a.IsNumeric() {
		nBranch = 2
		labels = []string{
			fmt.Sprintf("<= %g", threshold),
			fmt.Sprintf("> %g", threshold),
		}
	} else {
		nBranch = a.NumValues()
		labels = a.Values()
	}
	branches := make([][]*dataset.Instance, nBranch)
	var missing []*dataset.Instance
	branchW := make([]float64, nBranch)
	var knownW float64
	for _, in := range ins {
		v := in.Values[attr]
		if dataset.IsMissing(v) {
			missing = append(missing, in)
			continue
		}
		b := 0
		if a.IsNumeric() {
			if v > threshold {
				b = 1
			}
		} else {
			b = int(v)
		}
		branches[b] = append(branches[b], in)
		branchW[b] += in.Weight
		knownW += in.Weight
	}
	if len(missing) > 0 && knownW > 0 {
		for _, in := range missing {
			for b := range branches {
				if branchW[b] <= 0 {
					continue
				}
				frac := in.Clone()
				frac.Weight = in.Weight * branchW[b] / knownW
				branches[b] = append(branches[b], frac)
			}
		}
	}
	return branches, labels
}

// prune applies subtree replacement bottom-up using C4.5's pessimistic error
// estimate at confidence CF.
func (j *J48) prune(n *TreeNode) {
	if n.Attr < 0 {
		return
	}
	for _, c := range n.Children {
		j.prune(c)
	}
	leafErr := pessimisticError(n.Dist, j.ConfidenceFactor)
	var subtreeErr float64
	for _, c := range n.Children {
		subtreeErr += subtreeError(c, j.ConfidenceFactor)
	}
	if leafErr <= subtreeErr+0.1 {
		n.Attr = -1
		n.AttrName = ""
		n.Children = nil
		n.Labels = nil
	}
}

func subtreeError(n *TreeNode, cf float64) float64 {
	if n.Attr < 0 {
		return pessimisticError(n.Dist, cf)
	}
	var e float64
	for _, c := range n.Children {
		e += subtreeError(c, cf)
	}
	return e
}

// pessimisticError returns N * upper-confidence error rate for a leaf with
// the given class distribution, following C4.5 (WEKA's Stats.addErrs).
func pessimisticError(dist []float64, cf float64) float64 {
	total := sum(dist)
	if total <= 0 {
		return 0
	}
	errs := total - dist[maxIdx(dist)]
	return errs + addErrs(total, errs, cf)
}

// addErrs computes the additional pessimistic errors for e observed errors
// in n instances at confidence cf (C4.5 / WEKA implementation).
func addErrs(n, e, cf float64) float64 {
	if cf > 0.5 {
		return 0
	}
	if e == 0 {
		return n * (1 - math.Pow(cf, 1/n))
	}
	if e < 1 {
		base := n * (1 - math.Pow(cf, 1/n))
		return base + e*(addErrs(n, 1, cf)-base)
	}
	if e+0.5 >= n {
		return math.Max(n-e, 0)
	}
	z := normalInverse(1 - cf)
	f := (e + 0.5) / n
	r := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return r*n - e
}

// normalInverse approximates the standard normal quantile function using
// Acklam's rational approximation (relative error < 1.15e-9).
func normalInverse(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	dd := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	}
}

// Distribution implements Classifier; missing split values descend all
// branches with weights proportional to the training mass of each branch.
func (j *J48) Distribution(in *dataset.Instance) ([]float64, error) {
	if j.root == nil {
		return nil, fmt.Errorf("classify: J48 is untrained")
	}
	out := make([]float64, j.classAttr.NumValues())
	j.descendCells(j.root, func(col int) float64 { return in.Values[col] }, 1, out)
	return normalize(out), nil
}

// descendCells walks the tree reading split values through the cell
// accessor, so the per-instance row path and the columnar batch path
// (DistributionBatch) run the exact same arithmetic in the exact same
// order — predictions are bit-identical by construction.
func (j *J48) descendCells(n *TreeNode, cell func(col int) float64, w float64, acc []float64) {
	if n.Attr < 0 {
		dist := n.Dist
		total := sum(dist)
		if total <= 0 {
			acc[n.ClassIdx] += w
			return
		}
		for c, d := range dist {
			acc[c] += w * d / total
		}
		return
	}
	v := cell(n.Attr)
	if dataset.IsMissing(v) {
		var totalW float64
		childW := make([]float64, len(n.Children))
		for i, c := range n.Children {
			childW[i] = sum(c.Dist)
			totalW += childW[i]
		}
		if totalW <= 0 {
			j.descendCells(n.Children[0], cell, w, acc)
			return
		}
		for i, c := range n.Children {
			if childW[i] > 0 {
				j.descendCells(c, cell, w*childW[i]/totalW, acc)
			}
		}
		return
	}
	b := 0
	if n.Numeric {
		if v > n.Threshold {
			b = 1
		}
	} else {
		b = int(v)
		if b >= len(n.Children) {
			b = len(n.Children) - 1
		}
	}
	j.descendCells(n.Children[b], cell, w, acc)
}

// DistributionBatch implements BatchScorer: every row descends the tree
// through the columnar backing via the shared descendCells walk.
func (j *J48) DistributionBatch(d *dataset.Dataset) ([][]float64, error) {
	if j.root == nil {
		return nil, fmt.Errorf("classify: J48 is untrained")
	}
	cols := d.Columns()
	n := d.NumInstances()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := i
		acc := make([]float64, j.classAttr.NumValues())
		j.descendCells(j.root, func(col int) float64 { return cols[col][row] }, 1, acc)
		out[i] = normalize(acc)
	}
	return out, nil
}

// Tree returns the trained tree root (nil before Train).
func (j *J48) Tree() *TreeNode { return j.root }

// NumLeaves returns the number of leaves of the trained tree.
func (j *J48) NumLeaves() int { return countLeaves(j.root) }

// TreeSize returns the total number of nodes of the trained tree.
func (j *J48) TreeSize() int { return countNodes(j.root) }

func countLeaves(n *TreeNode) int {
	if n == nil {
		return 0
	}
	if n.Attr < 0 {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += countLeaves(c)
	}
	return total
}

func countNodes(n *TreeNode) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// String renders the tree in WEKA's textual J48 layout, the "textual output
// specifying the classification decision tree" of §4.1.
func (j *J48) String() string {
	if j.root == nil {
		return "J48: untrained"
	}
	var b strings.Builder
	b.WriteString("J48 pruned tree\n------------------\n\n")
	writeTree(&b, j.root, 0)
	fmt.Fprintf(&b, "\nNumber of Leaves  : %d\n\nSize of the tree : %d\n",
		j.NumLeaves(), j.TreeSize())
	return b.String()
}

func writeTree(b *strings.Builder, n *TreeNode, depth int) {
	if n.Attr < 0 {
		return
	}
	for i, c := range n.Children {
		for k := 0; k < depth; k++ {
			b.WriteString("|   ")
		}
		branch := ""
		if n.Numeric {
			branch = n.Labels[i]
		} else {
			branch = "= " + n.Labels[i]
		}
		fmt.Fprintf(b, "%s %s", n.AttrName, branch)
		if c.Attr < 0 {
			total := sum(c.Dist)
			errs := total - c.Dist[c.ClassIdx]
			if errs > 1e-9 {
				fmt.Fprintf(b, ": %s (%.2f/%.2f)\n", c.ClassName, total, errs)
			} else {
				fmt.Fprintf(b, ": %s (%.2f)\n", c.ClassName, total)
			}
		} else {
			b.WriteByte('\n')
			writeTree(b, c, depth+1)
		}
	}
}

func classDist(ins []*dataset.Instance, classIndex, k int) []float64 {
	dist := make([]float64, k)
	for _, in := range ins {
		v := in.Values[classIndex]
		if !dataset.IsMissing(v) {
			dist[int(v)] += in.Weight
		}
	}
	return dist
}

func weightOf(ins []*dataset.Instance) float64 {
	var w float64
	for _, in := range ins {
		w += in.Weight
	}
	return w
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
