package classify

import (
	"bytes"
	"encoding/gob"

	"repro/internal/dataset"
)

// The gob mirrors below give trained models a durable serialised form. The
// paper's §4.5 finding hinges on exactly this: the naive Web Services
// deployment serialised the algorithm object to disk after every invocation
// and rebuilt it on the next one. These encoders are that serialised state.

type j48Wire struct {
	ConfidenceFactor float64
	MinLeaf          float64
	Unpruned         bool
	Root             *TreeNode
	ClassAttr        *dataset.Attribute
	ClassIndex       int
}

// GobEncode implements gob.GobEncoder.
func (j *J48) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(j48Wire{
		ConfidenceFactor: j.ConfidenceFactor,
		MinLeaf:          j.MinLeaf,
		Unpruned:         j.Unpruned,
		Root:             j.root,
		ClassAttr:        j.classAttr,
		ClassIndex:       j.classIndex,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (j *J48) GobDecode(b []byte) error {
	var w j48Wire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	j.ConfidenceFactor = w.ConfidenceFactor
	j.MinLeaf = w.MinLeaf
	j.Unpruned = w.Unpruned
	j.root = w.Root
	j.classAttr = w.ClassAttr
	j.classIndex = w.ClassIndex
	return nil
}

type naiveBayesWire struct {
	ClassIndex      int
	NumClasses      int
	Attrs           []*dataset.Attribute
	ClassCount      []float64
	Nominal         [][][]float64
	Sum, SumSq, Cnt [][]float64
}

// GobEncode implements gob.GobEncoder.
func (nb *NaiveBayes) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(naiveBayesWire{
		ClassIndex: nb.classIndex,
		NumClasses: nb.numClasses,
		Attrs:      nb.attrs,
		ClassCount: nb.classCount,
		Nominal:    nb.nominal,
		Sum:        nb.sum,
		SumSq:      nb.sumSq,
		Cnt:        nb.cnt,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (nb *NaiveBayes) GobDecode(b []byte) error {
	var w naiveBayesWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	nb.classIndex = w.ClassIndex
	nb.numClasses = w.NumClasses
	nb.attrs = w.Attrs
	nb.classCount = w.ClassCount
	nb.nominal = w.Nominal
	nb.sum = w.Sum
	nb.sumSq = w.SumSq
	nb.cnt = w.Cnt
	return nil
}

type zeroRWire struct {
	Counts     []float64
	ClassIndex int
}

// GobEncode implements gob.GobEncoder.
func (z *ZeroR) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(zeroRWire{Counts: z.counts, ClassIndex: z.classIndex})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (z *ZeroR) GobDecode(b []byte) error {
	var w zeroRWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	z.counts = w.Counts
	z.classIndex = w.ClassIndex
	return nil
}
