package classify

import (
	"context"
	"strings"
	"testing"

	"repro/internal/datagen"
)

func TestPrismContactLenses(t *testing.T) {
	// PRISM's original evaluation dataset: it must fit the deterministic
	// contact-lenses function perfectly.
	d := datagen.ContactLenses()
	p := &Prism{}
	if err := p.Train(d); err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluation(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.TestModel(p, d); err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy() != 1 {
		t.Fatalf("Prism training accuracy = %v\n%s", ev.Accuracy(), p.String())
	}
	if p.NumRules() < 3 {
		t.Fatalf("only %d rules", p.NumRules())
	}
	s := p.String()
	if !strings.Contains(s, "If tear-prod-rate = reduced then none") {
		t.Fatalf("canonical rule missing:\n%s", s)
	}
}

func TestPrismWeather(t *testing.T) {
	d := datagen.Weather()
	p := &Prism{}
	if err := p.Train(d); err != nil {
		t.Fatal(err)
	}
	ev, _ := NewEvaluation(d)
	if err := ev.TestModel(p, d); err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy() < 0.9 {
		t.Fatalf("accuracy = %v\n%s", ev.Accuracy(), p.String())
	}
}

func TestPrismRejectsNumeric(t *testing.T) {
	if err := (&Prism{}).Train(datagen.WeatherNumeric()); err == nil {
		t.Fatal("numeric attributes accepted")
	}
}

func TestPrismBreastCancerBeatsBaseline(t *testing.T) {
	d := datagen.BreastCancer()
	ev, err := CrossValidateContext(context.Background(), func() Classifier { return &Prism{} }, d, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Rule learners overfit this noisy data relative to J48, but must stay
	// above chance (50%) and produce a full evaluation.
	if ev.Accuracy() < 0.55 {
		t.Fatalf("Prism CV accuracy = %v", ev.Accuracy())
	}
	if int(ev.Total) != 286 {
		t.Fatalf("evaluated %v", ev.Total)
	}
}

func TestPrismRegistered(t *testing.T) {
	c, err := New("Prism")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "Prism" {
		t.Fatalf("name = %q", c.Name())
	}
}
