package classify

import (
	"fmt"

	"repro/internal/dataset"
)

// ZeroR predicts the prior class distribution of the training set. It is the
// floor baseline every other classifier must beat.
type ZeroR struct {
	counts     []float64
	classIndex int
}

func init() { Register("ZeroR", func() Classifier { return &ZeroR{} }) }

// Name implements Classifier.
func (z *ZeroR) Name() string { return "ZeroR" }

// Train implements Classifier.
func (z *ZeroR) Train(d *dataset.Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	z.classIndex = d.ClassIndex
	z.counts = d.DeleteWithMissingClass().ClassCounts()
	return nil
}

// Distribution implements Classifier.
func (z *ZeroR) Distribution(in *dataset.Instance) ([]float64, error) {
	if z.counts == nil {
		return nil, fmt.Errorf("classify: ZeroR is untrained")
	}
	out := make([]float64, len(z.counts))
	copy(out, z.counts)
	return normalize(out), nil
}

// Begin implements Updateable.
func (z *ZeroR) Begin(schema *dataset.Dataset) error {
	ca := schema.ClassAttribute()
	if ca == nil || !ca.IsNominal() || ca.NumValues() < 2 {
		return fmt.Errorf("classify: ZeroR needs a nominal class with >=2 labels")
	}
	z.counts = make([]float64, schema.NumClasses())
	z.classIndex = schema.ClassIndex
	return nil
}

// Update implements Updateable.
func (z *ZeroR) Update(in *dataset.Instance) error {
	if z.counts == nil {
		return fmt.Errorf("classify: ZeroR.Update before Begin")
	}
	v := in.Values[z.classIndex]
	if dataset.IsMissing(v) {
		return nil
	}
	z.counts[int(v)] += in.Weight
	return nil
}
