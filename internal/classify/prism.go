package classify

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Prism is Cendrowska's PRISM covering rule learner over nominal
// attributes, another classic of the WEKA library the paper wraps: for
// each class it repeatedly builds a maximally precise conjunctive rule and
// removes the covered instances.
type Prism struct {
	rules      []prismRule
	classAttr  *dataset.Attribute
	classIndex int
	fallback   []float64
}

type prismRule struct {
	Class int
	Conds []prismCond
}

type prismCond struct {
	Attr  int
	Name  string
	Value int
	Label string
}

func init() { Register("Prism", func() Classifier { return &Prism{} }) }

// Name implements Classifier.
func (p *Prism) Name() string { return "Prism" }

// Train implements Classifier.
func (p *Prism) Train(d *dataset.Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	for col, a := range d.Attrs {
		if col != d.ClassIndex && !a.IsNominal() {
			return fmt.Errorf("classify: Prism requires nominal attributes; %q is %s (discretise first)",
				a.Name, a.Kind)
		}
	}
	d = d.DeleteWithMissingClass()
	p.classAttr = d.ClassAttribute()
	p.classIndex = d.ClassIndex
	p.fallback = d.ClassCounts()
	p.rules = nil

	for cls := 0; cls < p.classAttr.NumValues(); cls++ {
		remaining := append([]*dataset.Instance(nil), d.Instances...)
		for hasClass(remaining, p.classIndex, cls) {
			rule, covered := p.buildRule(d, remaining, cls)
			if rule == nil {
				break // no perfect or improving rule possible
			}
			p.rules = append(p.rules, *rule)
			// Remove instances covered by the rule.
			kept := remaining[:0]
			for _, in := range remaining {
				if !covered[in] {
					kept = append(kept, in)
				}
			}
			if len(kept) == len(remaining) {
				break // defensive: rule covered nothing
			}
			remaining = kept
		}
	}
	if len(p.rules) == 0 {
		return fmt.Errorf("classify: Prism learned no rules from %q", d.Relation)
	}
	return nil
}

func hasClass(ins []*dataset.Instance, classIndex, cls int) bool {
	for _, in := range ins {
		if int(in.Values[classIndex]) == cls {
			return true
		}
	}
	return false
}

// buildRule grows a conjunction for cls, greedily adding the condition with
// the best precision (p/t) until the rule is perfect or no attributes
// remain. It returns the rule and the set of covered instances.
func (p *Prism) buildRule(d *dataset.Dataset, ins []*dataset.Instance, cls int) (*prismRule, map[*dataset.Instance]bool) {
	rule := &prismRule{Class: cls}
	covered := ins
	used := map[int]bool{}
	for {
		// Perfect already?
		if pure(covered, p.classIndex, cls) {
			break
		}
		bestAttr, bestVal := -1, -1
		bestPrec, bestPos := -1.0, 0.0
		for col, a := range d.Attrs {
			if col == p.classIndex || used[col] {
				continue
			}
			for v := 0; v < a.NumValues(); v++ {
				var pos, tot float64
				for _, in := range covered {
					av := in.Values[col]
					if dataset.IsMissing(av) || int(av) != v {
						continue
					}
					tot += in.Weight
					if int(in.Values[p.classIndex]) == cls {
						pos += in.Weight
					}
				}
				if tot == 0 || pos == 0 {
					continue
				}
				prec := pos / tot
				if prec > bestPrec || (prec == bestPrec && pos > bestPos) {
					bestAttr, bestVal = col, v
					bestPrec, bestPos = prec, pos
				}
			}
		}
		if bestAttr < 0 {
			if len(rule.Conds) == 0 {
				return nil, nil // nothing distinguishes this class any more
			}
			break // imperfect rule, but the best we can do
		}
		a := d.Attrs[bestAttr]
		rule.Conds = append(rule.Conds, prismCond{
			Attr: bestAttr, Name: a.Name, Value: bestVal, Label: a.Value(bestVal),
		})
		used[bestAttr] = true
		next := covered[:0:0]
		for _, in := range covered {
			av := in.Values[bestAttr]
			if !dataset.IsMissing(av) && int(av) == bestVal {
				next = append(next, in)
			}
		}
		covered = next
		if len(used) == d.NumAttributes()-1 {
			break
		}
	}
	if len(rule.Conds) == 0 {
		return nil, nil
	}
	cov := map[*dataset.Instance]bool{}
	for _, in := range ins {
		if p.matches(rule, in) && int(in.Values[p.classIndex]) == rule.Class {
			cov[in] = true
		}
	}
	if len(cov) == 0 {
		return nil, nil
	}
	return rule, cov
}

func pure(ins []*dataset.Instance, classIndex, cls int) bool {
	if len(ins) == 0 {
		return false
	}
	for _, in := range ins {
		if int(in.Values[classIndex]) != cls {
			return false
		}
	}
	return true
}

func (p *Prism) matches(r *prismRule, in *dataset.Instance) bool {
	for _, c := range r.Conds {
		v := in.Values[c.Attr]
		if dataset.IsMissing(v) || int(v) != c.Value {
			return false
		}
	}
	return true
}

// Distribution implements Classifier: the first matching rule wins; with no
// match the training prior is returned.
func (p *Prism) Distribution(in *dataset.Instance) ([]float64, error) {
	if p.rules == nil {
		return nil, fmt.Errorf("classify: Prism is untrained")
	}
	out := make([]float64, p.classAttr.NumValues())
	for i := range p.rules {
		if p.matches(&p.rules[i], in) {
			out[p.rules[i].Class] = 1
			return out, nil
		}
	}
	copy(out, p.fallback)
	return normalize(out), nil
}

// NumRules returns the number of learned rules.
func (p *Prism) NumRules() int { return len(p.rules) }

// String renders the rule list in WEKA's Prism layout.
func (p *Prism) String() string {
	if p.rules == nil {
		return "Prism: untrained"
	}
	var b strings.Builder
	b.WriteString("Prism rules\n----------\n")
	for _, r := range p.rules {
		b.WriteString("If ")
		for i, c := range r.Conds {
			if i > 0 {
				b.WriteString(" and ")
			}
			fmt.Fprintf(&b, "%s = %s", c.Name, c.Label)
		}
		fmt.Fprintf(&b, " then %s\n", p.classAttr.Value(r.Class))
	}
	return b.String()
}
