package classify

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

// TestCrossValidateParallelDeterminism checks the tentpole guarantee: the
// parallel fold kernel replays fold records in order, so the evaluation is
// byte-identical at any worker count.
func TestCrossValidateParallelDeterminism(t *testing.T) {
	d := datagen.IrisLike(30, 7)
	factory := func() Classifier { return &NaiveBayes{} }
	base, err := CrossValidateContext(context.Background(), factory, d, 5, 42, Parallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		ev, err := CrossValidateContext(context.Background(), factory, d, 5, 42, Parallelism(p))
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if math.Float64bits(ev.Accuracy()) != math.Float64bits(base.Accuracy()) {
			t.Fatalf("parallelism %d: accuracy %v != %v", p, ev.Accuracy(), base.Accuracy())
		}
		if math.Float64bits(ev.Kappa()) != math.Float64bits(base.Kappa()) {
			t.Fatalf("parallelism %d: kappa %v != %v", p, ev.Kappa(), base.Kappa())
		}
		if ev.String() != base.String() {
			t.Fatalf("parallelism %d: evaluation text differs from sequential:\n%s\n---\n%s",
				p, ev.String(), base.String())
		}
	}
}

// TestBaggingParallelDeterminism trains the ensemble at several worker
// counts and demands bit-identical class distributions on every instance:
// each member derives its bootstrap rng from the member index, not from
// scheduling order.
func TestBaggingParallelDeterminism(t *testing.T) {
	d := datagen.IrisLike(25, 3)
	train := func(p int) *Bagging {
		b := &Bagging{Size: 8, Seed: 11, Parallelism: p}
		if err := b.Train(d); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		return b
	}
	base := train(1)
	for _, p := range []int{2, 8} {
		b := train(p)
		for i, in := range d.Instances {
			want, err := base.Distribution(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.Distribution(in)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("parallelism %d: distribution length %d != %d", p, len(got), len(want))
			}
			for c := range got {
				if math.Float64bits(got[c]) != math.Float64bits(want[c]) {
					t.Fatalf("parallelism %d instance %d class %d: %v != %v",
						p, i, c, got[c], want[c])
				}
			}
		}
	}
}

// blockingTrainer parks in TrainContext until the context is cancelled,
// signalling on started once training has begun.
type blockingTrainer struct {
	started chan struct{}
}

func (b *blockingTrainer) Name() string                 { return "blocking" }
func (b *blockingTrainer) Train(*dataset.Dataset) error { return nil }
func (b *blockingTrainer) TrainContext(ctx context.Context, _ *dataset.Dataset) error {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return ctx.Err()
}
func (b *blockingTrainer) Distribution(*dataset.Instance) ([]float64, error) {
	return []float64{1, 0}, nil
}

// TestCrossValidateCancellation cancels mid-fold and checks the kernel
// returns promptly with the context error and leaks no fold goroutines.
func TestCrossValidateCancellation(t *testing.T) {
	d := datagen.Weather()
	started := make(chan struct{}, 1)
	factory := func() Classifier { return &blockingTrainer{started: started} }
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	begin := time.Now()
	ev, err := CrossValidateContext(ctx, factory, d, 5, 1, Parallelism(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ev != nil {
		t.Fatalf("evaluation should be nil on cancellation, got %v", ev)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}

	// Workers must all have exited; allow the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
