package classify

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// NaiveBayes is a mixed nominal/numeric naive Bayes classifier with Laplace
// smoothing on nominal likelihoods and Gaussian likelihoods on numeric
// attributes. It is updateable, so it can consume remote data streams.
type NaiveBayes struct {
	classIndex int
	numClasses int
	attrs      []*dataset.Attribute

	classCount []float64
	// nominal[col][class][value] = weight
	nominal [][][]float64
	// numeric moments per col per class
	sum, sumSq, cnt [][]float64
}

func init() { Register("NaiveBayes", func() Classifier { return &NaiveBayes{} }) }

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "NaiveBayes" }

// Begin implements Updateable.
func (nb *NaiveBayes) Begin(schema *dataset.Dataset) error {
	ca := schema.ClassAttribute()
	if ca == nil || !ca.IsNominal() || ca.NumValues() < 2 {
		return fmt.Errorf("classify: NaiveBayes needs a nominal class with >=2 labels")
	}
	nb.classIndex = schema.ClassIndex
	nb.numClasses = ca.NumValues()
	nb.attrs = schema.Attrs
	nb.classCount = make([]float64, nb.numClasses)
	n := schema.NumAttributes()
	nb.nominal = make([][][]float64, n)
	nb.sum = make([][]float64, n)
	nb.sumSq = make([][]float64, n)
	nb.cnt = make([][]float64, n)
	for col, a := range schema.Attrs {
		if col == schema.ClassIndex {
			continue
		}
		switch {
		case a.IsNominal():
			nb.nominal[col] = make([][]float64, nb.numClasses)
			for c := range nb.nominal[col] {
				nb.nominal[col][c] = make([]float64, a.NumValues())
			}
		case a.IsNumeric():
			nb.sum[col] = make([]float64, nb.numClasses)
			nb.sumSq[col] = make([]float64, nb.numClasses)
			nb.cnt[col] = make([]float64, nb.numClasses)
		}
	}
	return nil
}

// Update implements Updateable.
func (nb *NaiveBayes) Update(in *dataset.Instance) error {
	if nb.classCount == nil {
		return fmt.Errorf("classify: NaiveBayes.Update before Begin/Train")
	}
	cv := in.Values[nb.classIndex]
	if dataset.IsMissing(cv) {
		return nil
	}
	c := int(cv)
	nb.classCount[c] += in.Weight
	for col, a := range nb.attrs {
		if col == nb.classIndex {
			continue
		}
		v := in.Values[col]
		if dataset.IsMissing(v) {
			continue
		}
		switch {
		case a.IsNominal():
			nb.nominal[col][c][int(v)] += in.Weight
		case a.IsNumeric():
			nb.sum[col][c] += v * in.Weight
			nb.sumSq[col][c] += v * v * in.Weight
			nb.cnt[col][c] += in.Weight
		}
	}
	return nil
}

// Train implements Classifier.
func (nb *NaiveBayes) Train(d *dataset.Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	if err := nb.Begin(d); err != nil {
		return err
	}
	for _, in := range d.Instances {
		if err := nb.Update(in); err != nil {
			return err
		}
	}
	return nil
}

// Distribution implements Classifier.
func (nb *NaiveBayes) Distribution(in *dataset.Instance) ([]float64, error) {
	if nb.classCount == nil {
		return nil, fmt.Errorf("classify: NaiveBayes is untrained")
	}
	var totalW float64
	for _, w := range nb.classCount {
		totalW += w
	}
	logp := make([]float64, nb.numClasses)
	for c := 0; c < nb.numClasses; c++ {
		// Laplace-smoothed log prior.
		logp[c] = math.Log((nb.classCount[c] + 1) / (totalW + float64(nb.numClasses)))
		for col, a := range nb.attrs {
			if col == nb.classIndex || col >= len(in.Values) {
				continue
			}
			v := in.Values[col]
			if dataset.IsMissing(v) {
				continue
			}
			switch {
			case a.IsNominal():
				row := nb.nominal[col][c]
				var rowW float64
				for _, w := range row {
					rowW += w
				}
				k := float64(len(row))
				logp[c] += math.Log((row[int(v)] + 1) / (rowW + k))
			case a.IsNumeric():
				n := nb.cnt[col][c]
				if n < 2 {
					continue
				}
				mean := nb.sum[col][c] / n
				variance := nb.sumSq[col][c]/n - mean*mean
				if variance < 1e-6 {
					variance = 1e-6
				}
				diff := v - mean
				logp[c] += -0.5*math.Log(2*math.Pi*variance) - diff*diff/(2*variance)
			}
		}
	}
	// Soft-max in log space for numeric stability.
	maxLog := math.Inf(-1)
	for _, lp := range logp {
		if lp > maxLog {
			maxLog = lp
		}
	}
	out := make([]float64, nb.numClasses)
	for c, lp := range logp {
		out[c] = math.Exp(lp - maxLog)
	}
	return normalize(out), nil
}
