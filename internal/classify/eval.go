package classify

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
)

// Evaluation accumulates test results for a classifier, covering the
// "testing the discovered knowledge" requirement of §3 and the Grid-WEKA
// task list of §2 (labelling test data, testing a previously built
// classifier, cross-validation).
type Evaluation struct {
	ClassNames []string
	// Confusion[actual][predicted] accumulates instance weight.
	Confusion [][]float64
	// Total is the evaluated weight; Correct the correctly labelled weight.
	Total, Correct float64
}

// NewEvaluation returns an empty evaluation for the dataset's class labels.
func NewEvaluation(d *dataset.Dataset) (*Evaluation, error) {
	ca := d.ClassAttribute()
	if ca == nil || !ca.IsNominal() {
		return nil, fmt.Errorf("classify: evaluation needs a nominal class")
	}
	k := ca.NumValues()
	conf := make([][]float64, k)
	for i := range conf {
		conf[i] = make([]float64, k)
	}
	return &Evaluation{ClassNames: ca.Values(), Confusion: conf}, nil
}

// TestModel evaluates a trained classifier on every test instance with a
// known class.
func (e *Evaluation) TestModel(c Classifier, test *dataset.Dataset) error {
	for _, in := range test.Instances {
		actual := in.Values[test.ClassIndex]
		if dataset.IsMissing(actual) {
			continue
		}
		pred, err := Predict(c, in)
		if err != nil {
			return err
		}
		e.Record(int(actual), pred, in.Weight)
	}
	return nil
}

// Record adds one labelled prediction.
func (e *Evaluation) Record(actual, predicted int, weight float64) {
	e.Confusion[actual][predicted] += weight
	e.Total += weight
	if actual == predicted {
		e.Correct += weight
	}
}

// Accuracy returns the fraction of correctly classified weight.
func (e *Evaluation) Accuracy() float64 {
	if e.Total == 0 {
		return 0
	}
	return e.Correct / e.Total
}

// ErrorRate returns 1 - Accuracy.
func (e *Evaluation) ErrorRate() float64 { return 1 - e.Accuracy() }

// Kappa returns Cohen's kappa statistic of the confusion matrix.
func (e *Evaluation) Kappa() float64 {
	if e.Total == 0 {
		return 0
	}
	k := len(e.Confusion)
	rowSum := make([]float64, k)
	colSum := make([]float64, k)
	for i := range e.Confusion {
		for j, w := range e.Confusion[i] {
			rowSum[i] += w
			colSum[j] += w
		}
	}
	var expected float64
	for i := 0; i < k; i++ {
		expected += rowSum[i] * colSum[i]
	}
	expected /= e.Total * e.Total
	observed := e.Accuracy()
	if expected >= 1 {
		return 0
	}
	return (observed - expected) / (1 - expected)
}

// Precision returns the precision of class c (TP / predicted-as-c).
func (e *Evaluation) Precision(c int) float64 {
	var predicted float64
	for i := range e.Confusion {
		predicted += e.Confusion[i][c]
	}
	if predicted == 0 {
		return 0
	}
	return e.Confusion[c][c] / predicted
}

// Recall returns the recall of class c (TP / actual-c).
func (e *Evaluation) Recall(c int) float64 {
	var actual float64
	for _, w := range e.Confusion[c] {
		actual += w
	}
	if actual == 0 {
		return 0
	}
	return e.Confusion[c][c] / actual
}

// F1 returns the harmonic mean of precision and recall for class c.
func (e *Evaluation) F1(c int) float64 {
	p, r := e.Precision(c), e.Recall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the evaluation in a WEKA-like summary layout.
func (e *Evaluation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Correctly Classified Instances   %8.2f  %7.3f %%\n", e.Correct, 100*e.Accuracy())
	fmt.Fprintf(&b, "Incorrectly Classified Instances %8.2f  %7.3f %%\n", e.Total-e.Correct, 100*e.ErrorRate())
	fmt.Fprintf(&b, "Kappa statistic                  %10.4f\n", e.Kappa())
	fmt.Fprintf(&b, "Total Number of Instances        %8.2f\n\n", e.Total)
	b.WriteString("=== Confusion Matrix ===\n")
	for i, row := range e.Confusion {
		for _, w := range row {
			fmt.Fprintf(&b, "%8.1f", w)
		}
		fmt.Fprintf(&b, " | actual %s\n", e.ClassNames[i])
	}
	b.WriteString("\n=== Detailed Accuracy By Class ===\n")
	fmt.Fprintf(&b, "%-24s %9s %9s %9s\n", "class", "precision", "recall", "f1")
	for c, name := range e.ClassNames {
		fmt.Fprintf(&b, "%-24s %9.3f %9.3f %9.3f\n", name, e.Precision(c), e.Recall(c), e.F1(c))
	}
	return b.String()
}

// CrossValidate runs stratified k-fold cross-validation, constructing a
// fresh classifier via factory for each fold, and returns the pooled
// evaluation.
func CrossValidate(factory Factory, d *dataset.Dataset, k int, seed int64) (*Evaluation, error) {
	if err := checkTrainable(d); err != nil {
		return nil, err
	}
	e, err := NewEvaluation(d)
	if err != nil {
		return nil, err
	}
	folds, err := dataset.Folds(d, k, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	for i := range folds {
		train, test := dataset.TrainTestForFold(d, folds, i)
		c := factory()
		if err := c.Train(train); err != nil {
			return nil, fmt.Errorf("classify: fold %d: %w", i, err)
		}
		if err := e.TestModel(c, test); err != nil {
			return nil, fmt.Errorf("classify: fold %d: %w", i, err)
		}
	}
	return e, nil
}

// Label predicts a class name for every instance of unlabelled (its class
// cells may be missing) using a previously built classifier — the Grid-WEKA
// "labelling of test data using a previously built classifier" task.
func Label(c Classifier, unlabelled *dataset.Dataset) ([]string, error) {
	ca := unlabelled.ClassAttribute()
	if ca == nil {
		return nil, fmt.Errorf("classify: Label needs a designated class attribute")
	}
	out := make([]string, unlabelled.NumInstances())
	for i, in := range unlabelled.Instances {
		p, err := Predict(c, in)
		if err != nil {
			return nil, err
		}
		out[i] = ca.Value(p)
	}
	return out, nil
}
