package classify

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Evaluation accumulates test results for a classifier, covering the
// "testing the discovered knowledge" requirement of §3 and the Grid-WEKA
// task list of §2 (labelling test data, testing a previously built
// classifier, cross-validation).
type Evaluation struct {
	ClassNames []string
	// Confusion[actual][predicted] accumulates instance weight.
	Confusion [][]float64
	// Total is the evaluated weight; Correct the correctly labelled weight.
	Total, Correct float64
}

// NewEvaluation returns an empty evaluation for the dataset's class labels.
func NewEvaluation(d *dataset.Dataset) (*Evaluation, error) {
	ca := d.ClassAttribute()
	if ca == nil || !ca.IsNominal() {
		return nil, fmt.Errorf("classify: evaluation needs a nominal class")
	}
	k := ca.NumValues()
	conf := make([][]float64, k)
	for i := range conf {
		conf[i] = make([]float64, k)
	}
	return &Evaluation{ClassNames: ca.Values(), Confusion: conf}, nil
}

// TestModel evaluates a trained classifier on every test instance with a
// known class.
func (e *Evaluation) TestModel(c Classifier, test *dataset.Dataset) error {
	for _, in := range test.Instances {
		actual := in.Values[test.ClassIndex]
		if dataset.IsMissing(actual) {
			continue
		}
		pred, err := Predict(c, in)
		if err != nil {
			return err
		}
		e.Record(int(actual), pred, in.Weight)
	}
	return nil
}

// Record adds one labelled prediction.
func (e *Evaluation) Record(actual, predicted int, weight float64) {
	e.Confusion[actual][predicted] += weight
	e.Total += weight
	if actual == predicted {
		e.Correct += weight
	}
}

// Accuracy returns the fraction of correctly classified weight.
func (e *Evaluation) Accuracy() float64 {
	if e.Total == 0 {
		return 0
	}
	return e.Correct / e.Total
}

// ErrorRate returns 1 - Accuracy.
func (e *Evaluation) ErrorRate() float64 { return 1 - e.Accuracy() }

// Kappa returns Cohen's kappa statistic of the confusion matrix.
func (e *Evaluation) Kappa() float64 {
	if e.Total == 0 {
		return 0
	}
	k := len(e.Confusion)
	rowSum := make([]float64, k)
	colSum := make([]float64, k)
	for i := range e.Confusion {
		for j, w := range e.Confusion[i] {
			rowSum[i] += w
			colSum[j] += w
		}
	}
	var expected float64
	for i := 0; i < k; i++ {
		expected += rowSum[i] * colSum[i]
	}
	expected /= e.Total * e.Total
	observed := e.Accuracy()
	if expected >= 1 {
		return 0
	}
	return (observed - expected) / (1 - expected)
}

// Precision returns the precision of class c (TP / predicted-as-c).
func (e *Evaluation) Precision(c int) float64 {
	var predicted float64
	for i := range e.Confusion {
		predicted += e.Confusion[i][c]
	}
	if predicted == 0 {
		return 0
	}
	return e.Confusion[c][c] / predicted
}

// Recall returns the recall of class c (TP / actual-c).
func (e *Evaluation) Recall(c int) float64 {
	var actual float64
	for _, w := range e.Confusion[c] {
		actual += w
	}
	if actual == 0 {
		return 0
	}
	return e.Confusion[c][c] / actual
}

// F1 returns the harmonic mean of precision and recall for class c.
func (e *Evaluation) F1(c int) float64 {
	p, r := e.Precision(c), e.Recall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the evaluation in a WEKA-like summary layout.
func (e *Evaluation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Correctly Classified Instances   %8.2f  %7.3f %%\n", e.Correct, 100*e.Accuracy())
	fmt.Fprintf(&b, "Incorrectly Classified Instances %8.2f  %7.3f %%\n", e.Total-e.Correct, 100*e.ErrorRate())
	fmt.Fprintf(&b, "Kappa statistic                  %10.4f\n", e.Kappa())
	fmt.Fprintf(&b, "Total Number of Instances        %8.2f\n\n", e.Total)
	b.WriteString("=== Confusion Matrix ===\n")
	for i, row := range e.Confusion {
		for _, w := range row {
			fmt.Fprintf(&b, "%8.1f", w)
		}
		fmt.Fprintf(&b, " | actual %s\n", e.ClassNames[i])
	}
	b.WriteString("\n=== Detailed Accuracy By Class ===\n")
	fmt.Fprintf(&b, "%-24s %9s %9s %9s\n", "class", "precision", "recall", "f1")
	for c, name := range e.ClassNames {
		fmt.Fprintf(&b, "%-24s %9.3f %9.3f %9.3f\n", name, e.Precision(c), e.Recall(c), e.F1(c))
	}
	return b.String()
}

// CVOption configures CrossValidateContext.
type CVOption func(*cvConfig)

type cvConfig struct {
	parallelism int
	metrics     *obs.Registry
}

// Parallelism sets the fold worker count: p <= 0 (the default) means one
// worker per CPU, 1 forces the sequential path. Results are bit-identical
// at every setting — parallel folds record predictions per fold and the
// pooled Evaluation replays them in fold order, preserving the float
// accumulation order of the sequential loop.
func Parallelism(p int) CVOption {
	return func(c *cvConfig) { c.parallelism = p }
}

// WithMetrics routes kernel instrumentation to reg instead of obs.Default.
func WithMetrics(reg *obs.Registry) CVOption {
	return func(c *cvConfig) { c.metrics = reg }
}

// record is one labelled prediction, buffered so parallel folds can
// replay into the pooled Evaluation in deterministic order.
type record struct {
	actual, predicted int
	weight            float64
}

// CrossValidateContext runs stratified k-fold cross-validation,
// constructing a fresh classifier via factory for each fold, training
// folds in parallel (see Parallelism), and returns the pooled
// evaluation. Fold membership depends only on (d, k, seed); the result
// is bit-identical at any worker count. Cancelling ctx aborts remaining
// folds and returns ctx.Err().
func CrossValidateContext(ctx context.Context, factory Factory, d *dataset.Dataset, k int, seed int64, opts ...CVOption) (*Evaluation, error) {
	var cfg cvConfig
	for _, o := range opts {
		o(&cfg)
	}
	if err := checkTrainable(d); err != nil {
		return nil, err
	}
	e, err := NewEvaluation(d)
	if err != nil {
		return nil, err
	}
	folds, err := dataset.FoldsView(d, k, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	workers := parallel.Workers(cfg.parallelism)
	if workers <= 1 {
		// Sequential fast path: accumulate straight into the evaluation,
		// no record buffers — allocation parity with the pre-parallel code.
		for i := range folds {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			train, test := dataset.TrainTestViewForFold(d, folds, i)
			c := factory()
			if err := TrainWith(ctx, c, train.Materialize()); err != nil {
				return nil, foldErr(i, err)
			}
			if err := testFold(e.Record, c, test); err != nil {
				return nil, foldErr(i, err)
			}
		}
		return e, nil
	}
	recs := make([][]record, len(folds))
	st, err := parallel.ForEachStats(ctx, len(folds), workers, func(i int) error {
		train, test := dataset.TrainTestViewForFold(d, folds, i)
		c := factory()
		if err := TrainWith(ctx, c, train.Materialize()); err != nil {
			return foldErr(i, err)
		}
		buf := make([]record, 0, test.NumInstances())
		err := testFold(func(actual, predicted int, weight float64) {
			buf = append(buf, record{actual, predicted, weight})
		}, c, test)
		if err != nil {
			return foldErr(i, err)
		}
		recs[i] = buf
		return nil
	})
	parallel.Observe(cfg.metrics, "crossvalidate", st)
	if err != nil {
		return nil, err
	}
	// Replay in fold order — the exact accumulation order of the
	// sequential path, so the floating-point sums match bit for bit.
	for _, buf := range recs {
		for _, r := range buf {
			e.Record(r.actual, r.predicted, r.weight)
		}
	}
	return e, nil
}

func foldErr(i int, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("classify: fold %d: %w", i, err)
}

// testFold evaluates a trained classifier over a test view, emitting one
// (actual, predicted, weight) triple per labelled instance in row order.
func testFold(emit func(actual, predicted int, weight float64), c Classifier, test *dataset.View) error {
	classIdx := test.Parent().ClassIndex
	for i := 0; i < test.NumInstances(); i++ {
		in := test.Instance(i)
		actual := in.Values[classIdx]
		if dataset.IsMissing(actual) {
			continue
		}
		pred, err := Predict(c, in)
		if err != nil {
			return err
		}
		emit(int(actual), pred, in.Weight)
	}
	return nil
}

// Label predicts a class name for every instance of unlabelled (its class
// cells may be missing) using a previously built classifier — the Grid-WEKA
// "labelling of test data using a previously built classifier" task.
func Label(c Classifier, unlabelled *dataset.Dataset) ([]string, error) {
	ca := unlabelled.ClassAttribute()
	if ca == nil {
		return nil, fmt.Errorf("classify: Label needs a designated class attribute")
	}
	out := make([]string, unlabelled.NumInstances())
	for i, in := range unlabelled.Instances {
		p, err := Predict(c, in)
		if err != nil {
			return nil, err
		}
		out[i] = ca.Value(p)
	}
	return out, nil
}
