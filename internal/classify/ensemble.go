package classify

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// RandomTree grows an unpruned decision tree considering a random subset of
// sqrt(#attributes) candidates at each split; the building block of
// RandomForest.
type RandomTree struct {
	Seed    int64
	MinLeaf float64

	root       *TreeNode
	classAttr  *dataset.Attribute
	classIndex int
	rng        *rand.Rand
}

func init() {
	Register("RandomTree", func() Classifier { return &RandomTree{Seed: 1, MinLeaf: 1} })
}

// Name implements Classifier.
func (t *RandomTree) Name() string { return "RandomTree" }

// Train implements Classifier.
func (t *RandomTree) Train(d *dataset.Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	d = d.DeleteWithMissingClass()
	t.classAttr = d.ClassAttribute()
	t.classIndex = d.ClassIndex
	t.rng = rand.New(rand.NewSource(t.Seed))
	work := make([]*dataset.Instance, d.NumInstances())
	copy(work, d.Instances)
	t.root = t.grow(d, work, 0)
	return nil
}

func (t *RandomTree) grow(d *dataset.Dataset, ins []*dataset.Instance, depth int) *TreeNode {
	node := &TreeNode{Attr: -1, Dist: classDist(ins, t.classIndex, t.classAttr.NumValues())}
	node.ClassIdx = maxIdx(node.Dist)
	node.ClassName = t.classAttr.Value(node.ClassIdx)
	total := sum(node.Dist)
	if total < 2*t.MinLeaf || node.Dist[node.ClassIdx] == total || depth > 40 {
		return node
	}
	// Candidate attributes: a random sqrt-sized subset.
	var candidates []int
	for col := range d.Attrs {
		if col != t.classIndex && !d.Attrs[col].IsString() {
			candidates = append(candidates, col)
		}
	}
	t.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	m := int(math.Sqrt(float64(len(candidates)))) + 1
	if m > len(candidates) {
		m = len(candidates)
	}
	helper := &J48{MinLeaf: t.MinLeaf, ConfidenceFactor: 0.25}
	helper.classAttr = t.classAttr
	helper.classIndex = t.classIndex
	baseH := dataset.Entropy(node.Dist)
	totalW := weightOf(ins)
	bestAttr, bestTh, bestGain := -1, 0.0, 0.0
	for _, col := range candidates[:m] {
		a := d.Attrs[col]
		var g, si, th float64
		if a.IsNominal() {
			g, si = helper.nominalGain(ins, col, a.NumValues(), baseH, totalW)
		} else {
			g, si, th = helper.numericGain(ins, col, baseH, totalW)
		}
		_ = si
		if g > bestGain {
			bestAttr, bestTh, bestGain = col, th, g
		}
	}
	if bestAttr < 0 {
		return node
	}
	branches, labels := helper.partition(d, ins, bestAttr, bestTh)
	nonEmpty := 0
	for _, b := range branches {
		if len(b) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return node
	}
	a := d.Attrs[bestAttr]
	node.Attr = bestAttr
	node.AttrName = a.Name
	node.Numeric = a.IsNumeric()
	node.Threshold = bestTh
	node.Labels = labels
	node.Children = make([]*TreeNode, len(branches))
	for i, b := range branches {
		if len(b) == 0 {
			leaf := &TreeNode{Attr: -1, Dist: make([]float64, len(node.Dist))}
			leaf.ClassIdx = node.ClassIdx
			leaf.ClassName = node.ClassName
			node.Children[i] = leaf
			continue
		}
		node.Children[i] = t.grow(d, b, depth+1)
	}
	return node
}

// Distribution implements Classifier.
func (t *RandomTree) Distribution(in *dataset.Instance) ([]float64, error) {
	if t.root == nil {
		return nil, fmt.Errorf("classify: RandomTree is untrained")
	}
	helper := &J48{}
	helper.classAttr = t.classAttr
	helper.root = t.root
	return helper.Distribution(in)
}

// Bagging trains Size base classifiers on bootstrap resamples and averages
// their distributions. Base models train in parallel across goroutines —
// the "multiple computational resources" idea of Grid WEKA realised on a
// shared-memory host. Each member draws its bootstrap sample from its
// own RNG seeded by parallel.DeriveSeed(Seed, i), so member i's model is
// reproducible regardless of training order or worker count.
type Bagging struct {
	Size int
	Seed int64
	// Parallelism bounds member-training workers; <= 0 means one per CPU.
	Parallelism int
	// Base constructs each base learner; defaults to unpruned J48.
	Base func() Classifier

	members []Classifier
}

func init() { Register("Bagging", func() Classifier { return &Bagging{Size: 10, Seed: 1} }) }

// Name implements Classifier.
func (b *Bagging) Name() string { return "Bagging" }

// Options implements Parameterized.
func (b *Bagging) Options() []Option {
	return []Option{
		{Name: "size", Description: "number of bagged models", Default: "10"},
		{Name: "seed", Description: "bootstrap seed", Default: "1"},
		{Name: "parallelism", Description: "member-training workers (<=0: one per CPU)", Default: "0"},
	}
}

// SetOption implements Parameterized.
func (b *Bagging) SetOption(name, value string) error {
	switch name {
	case "size":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 {
			return fmt.Errorf("classify: Bagging size must be a positive integer, got %q", value)
		}
		b.Size = n
	case "seed":
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("classify: Bagging seed must be an integer, got %q", value)
		}
		b.Seed = n
	case "parallelism":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("classify: Bagging parallelism must be an integer, got %q", value)
		}
		b.Parallelism = n
	default:
		return fmt.Errorf("classify: Bagging has no option %q", name)
	}
	return nil
}

// Train implements Classifier.
func (b *Bagging) Train(d *dataset.Dataset) error {
	return b.TrainContext(context.Background(), d)
}

// TrainContext implements ContextTrainer: member training stops promptly
// once ctx is cancelled.
func (b *Bagging) TrainContext(ctx context.Context, d *dataset.Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	base := b.Base
	if base == nil {
		base = func() Classifier {
			j := NewJ48()
			j.Unpruned = true
			return j
		}
	}
	members := make([]Classifier, b.Size)
	err := parallel.ForEach(ctx, b.Size, b.Parallelism, func(i int) error {
		seed := parallel.DeriveSeed(b.Seed, i)
		rng := rand.New(rand.NewSource(seed))
		sample := dataset.ResampleView(d, d.NumInstances(), rng).Materialize()
		m := base()
		if rt, ok := m.(*RandomTree); ok {
			rt.Seed = seed
		}
		if err := m.Train(sample); err != nil {
			return fmt.Errorf("classify: Bagging member %d failed: %w", i, err)
		}
		members[i] = m
		return nil
	})
	if err != nil {
		return err
	}
	b.members = members
	return nil
}

// Distribution implements Classifier. Member votes are collected in
// parallel (bounded by Parallelism) and summed in member order, so the
// result is bit-identical to a sequential poll.
func (b *Bagging) Distribution(in *dataset.Instance) ([]float64, error) {
	if len(b.members) == 0 {
		return nil, fmt.Errorf("classify: Bagging is untrained")
	}
	dists := make([][]float64, len(b.members))
	err := parallel.ForEach(context.Background(), len(b.members), b.Parallelism, func(i int) error {
		dist, err := b.members[i].Distribution(in)
		if err != nil {
			return err
		}
		dists[i] = dist
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, dist := range dists {
		if out == nil {
			out = make([]float64, len(dist))
		}
		for c, p := range dist {
			out[c] += p
		}
	}
	return normalize(out), nil
}

// RandomForest is Bagging over RandomTree members.
type RandomForest struct {
	Bagging
}

func init() {
	Register("RandomForest", func() Classifier {
		f := &RandomForest{}
		f.Size = 20
		f.Seed = 1
		f.Base = func() Classifier { return &RandomTree{Seed: 1, MinLeaf: 1} }
		return f
	})
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "RandomForest" }

// AdaBoostM1 implements the AdaBoost.M1 boosting meta-algorithm over
// decision stumps (or any supplied base learner).
type AdaBoostM1 struct {
	Rounds int
	Seed   int64
	Base   func() Classifier

	members []Classifier
	alphas  []float64
	numCls  int
}

func init() { Register("AdaBoostM1", func() Classifier { return &AdaBoostM1{Rounds: 10, Seed: 1} }) }

// Name implements Classifier.
func (a *AdaBoostM1) Name() string { return "AdaBoostM1" }

// Options implements Parameterized.
func (a *AdaBoostM1) Options() []Option {
	return []Option{
		{Name: "rounds", Description: "number of boosting rounds", Default: "10"},
		{Name: "seed", Description: "resampling seed", Default: "1"},
	}
}

// SetOption implements Parameterized.
func (a *AdaBoostM1) SetOption(name, value string) error {
	switch name {
	case "rounds":
		n, err := strconv.Atoi(value)
		if err != nil || n < 1 {
			return fmt.Errorf("classify: AdaBoostM1 rounds must be a positive integer, got %q", value)
		}
		a.Rounds = n
	case "seed":
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("classify: AdaBoostM1 seed must be an integer, got %q", value)
		}
		a.Seed = n
	default:
		return fmt.Errorf("classify: AdaBoostM1 has no option %q", name)
	}
	return nil
}

// Train implements Classifier.
func (a *AdaBoostM1) Train(d *dataset.Dataset) error {
	if err := checkTrainable(d); err != nil {
		return err
	}
	d = d.DeleteWithMissingClass()
	base := a.Base
	if base == nil {
		base = func() Classifier { return &DecisionStump{} }
	}
	a.numCls = d.NumClasses()
	// Boost on a weighted copy.
	work := d.CloneSchema()
	for _, in := range d.Instances {
		work.Instances = append(work.Instances, in.Clone())
	}
	// Weights sum to n (not 1): J48-family base learners compare branch
	// mass against MinLeaf in absolute terms.
	n := float64(work.NumInstances())
	for _, in := range work.Instances {
		in.Weight = 1
	}
	a.members = a.members[:0]
	a.alphas = a.alphas[:0]
	for round := 0; round < a.Rounds; round++ {
		m := base()
		if err := m.Train(work); err != nil {
			return fmt.Errorf("classify: AdaBoostM1 round %d: %w", round, err)
		}
		var errW float64
		preds := make([]int, work.NumInstances())
		for i, in := range work.Instances {
			p, err := Predict(m, in)
			if err != nil {
				return err
			}
			preds[i] = p
			if p != int(in.Values[work.ClassIndex]) {
				errW += in.Weight
			}
		}
		errW /= n
		if errW >= 0.5 {
			break // weak learner no better than chance: stop boosting
		}
		if errW < 1e-10 {
			a.members = append(a.members, m)
			a.alphas = append(a.alphas, 10) // effectively perfect learner
			break
		}
		beta := errW / (1 - errW)
		a.members = append(a.members, m)
		a.alphas = append(a.alphas, math.Log(1/beta))
		var total float64
		for i, in := range work.Instances {
			if preds[i] == int(in.Values[work.ClassIndex]) {
				in.Weight *= beta
			}
			total += in.Weight
		}
		scale := n / total
		for _, in := range work.Instances {
			in.Weight *= scale
		}
	}
	if len(a.members) == 0 {
		// Fall back to a single base model trained on uniform weights.
		m := base()
		if err := m.Train(d); err != nil {
			return err
		}
		a.members = append(a.members, m)
		a.alphas = append(a.alphas, 1)
	}
	return nil
}

// Distribution implements Classifier.
func (a *AdaBoostM1) Distribution(in *dataset.Instance) ([]float64, error) {
	if len(a.members) == 0 {
		return nil, fmt.Errorf("classify: AdaBoostM1 is untrained")
	}
	votes := make([]float64, a.numCls)
	for i, m := range a.members {
		p, err := Predict(m, in)
		if err != nil {
			return nil, err
		}
		votes[p] += a.alphas[i]
	}
	return normalize(votes), nil
}
