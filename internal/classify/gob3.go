package classify

import (
	"bytes"
	"encoding/gob"

	"repro/internal/dataset"
)

// This file completes the serialisation path the model store needs: every
// registered classifier gets a durable gob form, so a snapshot of any
// trained instance can be written to the content-addressed store and
// resumed by another replica. gob.go/gob2.go cover the original six
// algorithms; the mirrors here cover the encoder-based learners
// (Logistic, MultilayerPerceptron), DecisionStump, and the ensembles
// (RandomTree, Bagging/RandomForest, AdaBoostM1). Training-only state —
// RNGs, base-learner factories, momentum scratch — is deliberately not
// serialised: a restored model predicts, it does not resume training.

func init() {
	// Ensemble members travel as Classifier interface values inside the
	// wire structs below, which needs their concrete types registered.
	gob.Register(&J48{})
	gob.Register(&RandomTree{})
	gob.Register(&DecisionStump{})
	gob.Register(&NaiveBayes{})
	gob.Register(&ZeroR{})
	gob.Register(&OneR{})
}

// encoderWire mirrors the feature encoder. The schema travels without
// instances: encode only needs attribute kinds, offsets and moments.
type encoderWire struct {
	Schema *dataset.Dataset
	Offset []int
	Width  int
	Mean   []float64
	Std    []float64
}

func encoderToWire(e *encoder) *encoderWire {
	if e == nil {
		return nil
	}
	return &encoderWire{
		Schema: e.schema.ShallowWith(nil),
		Offset: e.offset, Width: e.width, Mean: e.mean, Std: e.std,
	}
}

func encoderFromWire(w *encoderWire) *encoder {
	if w == nil {
		return nil
	}
	return &encoder{schema: w.Schema, offset: w.Offset, width: w.Width, mean: w.Mean, std: w.Std}
}

type stumpWire struct {
	Inner *J48
}

// GobEncode implements gob.GobEncoder.
func (s *DecisionStump) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(stumpWire{Inner: s.inner})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *DecisionStump) GobDecode(b []byte) error {
	var w stumpWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	s.inner = w.Inner
	return nil
}

type logisticWire struct {
	Epochs       int
	LearningRate float64
	Lambda       float64
	Seed         int64
	Enc          *encoderWire
	Weights      [][]float64
	Bias         []float64
	NumClasses   int
}

// GobEncode implements gob.GobEncoder.
func (l *Logistic) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(logisticWire{
		Epochs: l.Epochs, LearningRate: l.LearningRate, Lambda: l.Lambda, Seed: l.Seed,
		Enc: encoderToWire(l.enc), Weights: l.weights, Bias: l.bias, NumClasses: l.numClasses,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (l *Logistic) GobDecode(b []byte) error {
	var w logisticWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	l.Epochs, l.LearningRate, l.Lambda, l.Seed = w.Epochs, w.LearningRate, w.Lambda, w.Seed
	l.enc = encoderFromWire(w.Enc)
	l.weights, l.bias, l.numClasses = w.Weights, w.Bias, w.NumClasses
	return nil
}

type mlpWire struct {
	Hidden       int
	LearningRate float64
	Momentum     float64
	Epochs       int
	Seed         int64
	Enc          *encoderWire
	NumClasses   int
	W1, W2       [][]float64
	B1, B2       []float64
}

// GobEncode implements gob.GobEncoder.
func (m *MLP) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(mlpWire{
		Hidden: m.Hidden, LearningRate: m.LearningRate, Momentum: m.Momentum,
		Epochs: m.Epochs, Seed: m.Seed,
		Enc: encoderToWire(m.enc), NumClasses: m.numClasses,
		W1: m.w1, W2: m.w2, B1: m.b1, B2: m.b2,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *MLP) GobDecode(b []byte) error {
	var w mlpWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	m.Hidden, m.LearningRate, m.Momentum, m.Epochs, m.Seed =
		w.Hidden, w.LearningRate, w.Momentum, w.Epochs, w.Seed
	m.enc = encoderFromWire(w.Enc)
	m.numClasses = w.NumClasses
	m.w1, m.w2, m.b1, m.b2 = w.W1, w.W2, w.B1, w.B2
	m.dw1p, m.dw2p, m.db1p, m.db2p = nil, nil, nil, nil
	return nil
}

type randomTreeWire struct {
	Seed       int64
	MinLeaf    float64
	Root       *TreeNode
	ClassAttr  *dataset.Attribute
	ClassIndex int
}

// GobEncode implements gob.GobEncoder.
func (t *RandomTree) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(randomTreeWire{
		Seed: t.Seed, MinLeaf: t.MinLeaf,
		Root: t.root, ClassAttr: t.classAttr, ClassIndex: t.classIndex,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (t *RandomTree) GobDecode(b []byte) error {
	var w randomTreeWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	t.Seed, t.MinLeaf = w.Seed, w.MinLeaf
	t.root, t.classAttr, t.classIndex = w.Root, w.ClassAttr, w.ClassIndex
	t.rng = nil
	return nil
}

type baggingWire struct {
	Size        int
	Seed        int64
	Parallelism int
	Members     []Classifier
}

// GobEncode implements gob.GobEncoder. The Base factory is not
// serialisable; a restored ensemble predicts with its trained members
// (retraining falls back to the default base learner).
func (b *Bagging) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(baggingWire{
		Size: b.Size, Seed: b.Seed, Parallelism: b.Parallelism, Members: b.members,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (b *Bagging) GobDecode(raw []byte) error {
	var w baggingWire
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&w); err != nil {
		return err
	}
	b.Size, b.Seed, b.Parallelism, b.members = w.Size, w.Seed, w.Parallelism, w.Members
	return nil
}

type adaBoostWire struct {
	Rounds  int
	Seed    int64
	Members []Classifier
	Alphas  []float64
	NumCls  int
}

// GobEncode implements gob.GobEncoder.
func (a *AdaBoostM1) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(adaBoostWire{
		Rounds: a.Rounds, Seed: a.Seed, Members: a.members, Alphas: a.alphas, NumCls: a.numCls,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (a *AdaBoostM1) GobDecode(b []byte) error {
	var w adaBoostWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	a.Rounds, a.Seed, a.members, a.alphas, a.numCls = w.Rounds, w.Seed, w.Members, w.Alphas, w.NumCls
	return nil
}
