package classify

import (
	"bytes"
	"encoding/gob"

	"repro/internal/dataset"
)

// Gob mirrors for the remaining single-model learners, so the naive
// serialising deployment of §4.5 (and the model store generally) can carry
// any of the commonly requested algorithms. Ensemble and
// gradient-trained models (Bagging, RandomForest, AdaBoostM1, Logistic,
// MLP) are deliberately not serialisable: the §4.5 experiment concerns
// per-invocation state round-trips of single algorithm objects, and the
// in-memory harness handles the rest.

type oneRWire struct {
	MinBucket  int
	Attr       int
	Numeric    bool
	Cutpoints  []float64
	ValueClass [][]float64
	Fallback   []float64
	ClassIndex int
	NumClasses int
}

// GobEncode implements gob.GobEncoder.
func (o *OneR) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(oneRWire{
		MinBucket:  o.minBucket,
		Attr:       o.attr,
		Numeric:    o.numeric,
		Cutpoints:  o.cutpoints,
		ValueClass: o.valueClass,
		Fallback:   o.fallback,
		ClassIndex: o.classIndex,
		NumClasses: o.numClasses,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (o *OneR) GobDecode(b []byte) error {
	var w oneRWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	o.minBucket = w.MinBucket
	o.attr = w.Attr
	o.numeric = w.Numeric
	o.cutpoints = w.Cutpoints
	o.valueClass = w.ValueClass
	o.fallback = w.Fallback
	o.classIndex = w.ClassIndex
	o.numClasses = w.NumClasses
	return nil
}

type ibkWire struct {
	K              int
	DistanceWeight bool
	Relation       string
	Attrs          []*dataset.Attribute
	ClassIndex     int
	Rows           [][]float64
	Weights        []float64
	Min, Max       []float64
}

// GobEncode implements gob.GobEncoder (the case base travels whole —
// instance-based learning's serialised state IS the data).
func (k *IBk) GobEncode() ([]byte, error) {
	w := ibkWire{K: k.K, DistanceWeight: k.DistanceWeight, Min: k.min, Max: k.max}
	if k.schema != nil {
		w.Relation = k.schema.Relation
		w.Attrs = k.schema.Attrs
		w.ClassIndex = k.schema.ClassIndex
		for _, in := range k.cases {
			w.Rows = append(w.Rows, in.Values)
			w.Weights = append(w.Weights, in.Weight)
		}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (k *IBk) GobDecode(b []byte) error {
	var w ibkWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	k.K = w.K
	k.DistanceWeight = w.DistanceWeight
	k.min = w.Min
	k.max = w.Max
	k.cases = nil
	if w.Attrs != nil {
		sc := dataset.New(w.Relation, w.Attrs...)
		sc.ClassIndex = w.ClassIndex
		k.schema = sc
		for i, row := range w.Rows {
			in := &dataset.Instance{Values: row, Weight: w.Weights[i]}
			k.cases = append(k.cases, in)
		}
	}
	return nil
}

type prismWire struct {
	Rules      []prismRule
	ClassAttr  *dataset.Attribute
	ClassIndex int
	Fallback   []float64
}

// GobEncode implements gob.GobEncoder.
func (p *Prism) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(prismWire{
		Rules:      p.rules,
		ClassAttr:  p.classAttr,
		ClassIndex: p.classIndex,
		Fallback:   p.fallback,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (p *Prism) GobDecode(b []byte) error {
	var w prismWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	p.rules = w.Rules
	p.classAttr = w.ClassAttr
	p.classIndex = w.ClassIndex
	p.fallback = w.Fallback
	return nil
}
