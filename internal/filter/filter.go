// Package filter implements dataset transformation tools — the "set of
// tools to manipulate different data types" §3 requires beyond format
// conversion: discretisation, normalisation, standardisation,
// missing-value replacement and attribute removal, in the style of WEKA's
// unsupervised filters. Filters return new datasets; inputs are never
// mutated.
package filter

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Filter transforms a dataset.
type Filter interface {
	Name() string
	Apply(d *dataset.Dataset) (*dataset.Dataset, error)
}

// Discretize bins numeric attributes into nominal ranges.
type Discretize struct {
	// Bins is the number of intervals (default 10).
	Bins int
	// EqualFrequency selects equal-frequency binning instead of
	// equal-width.
	EqualFrequency bool
	// Columns restricts the filter to these column indices (nil = every
	// numeric non-class column).
	Columns []int
}

// Name implements Filter.
func (f *Discretize) Name() string { return "Discretize" }

// Apply implements Filter.
func (f *Discretize) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	target, cuts, attrs, err := f.plan(d)
	if err != nil {
		return nil, err
	}
	out := dataset.New(d.Relation, attrs...)
	out.ClassIndex = d.ClassIndex
	for _, in := range d.Instances {
		vals := make([]float64, len(in.Values))
		copy(vals, in.Values)
		for c := range target {
			v := in.Values[c]
			if dataset.IsMissing(v) {
				continue
			}
			vals[c] = float64(binOf(cuts[c], v))
		}
		out.Instances = append(out.Instances, &dataset.Instance{Values: vals, Weight: in.Weight})
	}
	return out, nil
}

// plan computes the target columns, their cutpoints, and the output
// schema — shared by the row path and the columnar batch path so both
// bin against identical boundaries.
func (f *Discretize) plan(d *dataset.Dataset) (map[int]bool, map[int][]float64, []*dataset.Attribute, error) {
	bins := f.Bins
	if bins <= 0 {
		bins = 10
	}
	target := map[int]bool{}
	if f.Columns != nil {
		for _, c := range f.Columns {
			if c < 0 || c >= d.NumAttributes() {
				return nil, nil, nil, fmt.Errorf("filter: column %d out of range", c)
			}
			if !d.Attrs[c].IsNumeric() {
				return nil, nil, nil, fmt.Errorf("filter: column %d (%s) is not numeric", c, d.Attrs[c].Name)
			}
			target[c] = true
		}
	} else {
		for c, a := range d.Attrs {
			if c != d.ClassIndex && a.IsNumeric() {
				target[c] = true
			}
		}
	}
	// Compute cutpoints per target column.
	cuts := map[int][]float64{}
	for c := range target {
		vals := d.NumericColumn(c)
		if len(vals) == 0 {
			cuts[c] = nil
			continue
		}
		if f.EqualFrequency {
			sort.Float64s(vals)
			var cp []float64
			for b := 1; b < bins; b++ {
				idx := b * len(vals) / bins
				if idx > 0 && idx < len(vals) {
					// Cut between the neighbouring values so the boundary
					// value lands in the lower bin.
					cp = append(cp, (vals[idx-1]+vals[idx])/2)
				}
			}
			cuts[c] = dedupFloats(cp)
		} else {
			min, max := vals[0], vals[0]
			for _, v := range vals {
				min, max = math.Min(min, v), math.Max(max, v)
			}
			if max == min {
				cuts[c] = nil
				continue
			}
			var cp []float64
			width := (max - min) / float64(bins)
			for b := 1; b < bins; b++ {
				cp = append(cp, min+float64(b)*width)
			}
			cuts[c] = cp
		}
	}
	// Build the new schema.
	attrs := make([]*dataset.Attribute, d.NumAttributes())
	for c, a := range d.Attrs {
		if !target[c] {
			attrs[c] = a.Clone()
			continue
		}
		cp := cuts[c]
		labels := make([]string, len(cp)+1)
		for b := range labels {
			lo, hi := "-inf", "inf"
			if b > 0 {
				lo = fmt.Sprintf("%.4g", cp[b-1])
			}
			if b < len(cp) {
				hi = fmt.Sprintf("%.4g", cp[b])
			}
			labels[b] = "(" + lo + "-" + hi + "]"
		}
		attrs[c] = dataset.NewNominalAttribute(a.Name, labels...)
	}
	return target, cuts, attrs, nil
}

func binOf(cuts []float64, v float64) int {
	return sort.SearchFloat64s(cuts, v)
}

func dedupFloats(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Normalize rescales numeric attributes linearly into [0,1].
type Normalize struct{}

// Name implements Filter.
func (Normalize) Name() string { return "Normalize" }

// Apply implements Filter.
func (Normalize) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	out := d.Clone()
	for c, a := range out.Attrs {
		if c == out.ClassIndex || !a.IsNumeric() {
			continue
		}
		vals := out.NumericColumn(c)
		if len(vals) == 0 {
			continue
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			min, max = math.Min(min, v), math.Max(max, v)
		}
		span := max - min
		for _, in := range out.Instances {
			v := in.Values[c]
			if dataset.IsMissing(v) {
				continue
			}
			if span == 0 {
				in.Values[c] = 0
			} else {
				in.Values[c] = (v - min) / span
			}
		}
	}
	out.InvalidateColumns()
	return out, nil
}

// Standardize rescales numeric attributes to zero mean, unit variance.
type Standardize struct{}

// Name implements Filter.
func (Standardize) Name() string { return "Standardize" }

// Apply implements Filter.
func (Standardize) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	out := d.Clone()
	for c, a := range out.Attrs {
		if c == out.ClassIndex || !a.IsNumeric() {
			continue
		}
		vals := out.NumericColumn(c)
		if len(vals) < 2 {
			continue
		}
		var sum, sumSq float64
		for _, v := range vals {
			sum += v
			sumSq += v * v
		}
		n := float64(len(vals))
		mean := sum / n
		variance := sumSq/n - mean*mean
		sd := math.Sqrt(math.Max(variance, 0))
		for _, in := range out.Instances {
			v := in.Values[c]
			if dataset.IsMissing(v) {
				continue
			}
			if sd == 0 {
				in.Values[c] = 0
			} else {
				in.Values[c] = (v - mean) / sd
			}
		}
	}
	out.InvalidateColumns()
	return out, nil
}

// ReplaceMissing fills missing cells with the column mean (numeric) or mode
// (nominal).
type ReplaceMissing struct{}

// Name implements Filter.
func (ReplaceMissing) Name() string { return "ReplaceMissingValues" }

// Apply implements Filter.
func (ReplaceMissing) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	out := d.Clone()
	for c, a := range out.Attrs {
		if c == out.ClassIndex {
			continue
		}
		var fill float64
		switch {
		case a.IsNumeric():
			vals := out.NumericColumn(c)
			if len(vals) == 0 {
				continue
			}
			var sum float64
			for _, v := range vals {
				sum += v
			}
			fill = sum / float64(len(vals))
		case a.IsNominal():
			// Ascending scan with a strict > makes the mode tie-break
			// deterministic (smallest index wins) — the batch path
			// reproduces it exactly.
			counts := out.ValueCounts(c)
			best, bestW := -1, -1.0
			for v, w := range counts {
				if w > bestW {
					best, bestW = v, w
				}
			}
			if best < 0 {
				continue
			}
			fill = float64(best)
		default:
			continue
		}
		for _, in := range out.Instances {
			if dataset.IsMissing(in.Values[c]) {
				in.Values[c] = fill
			}
		}
	}
	out.InvalidateColumns()
	return out, nil
}

// RemoveAttributes drops the named columns (the class attribute cannot be
// removed).
type RemoveAttributes struct {
	Names []string
}

// Name implements Filter.
func (RemoveAttributes) Name() string { return "Remove" }

// Apply implements Filter.
func (f RemoveAttributes) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	keep, err := f.keepColumns(d)
	if err != nil {
		return nil, err
	}
	return d.Project(keep)
}

// keepColumns resolves the surviving column indices — shared by the row
// path and the columnar batch path.
func (f RemoveAttributes) keepColumns(d *dataset.Dataset) ([]int, error) {
	drop := map[string]bool{}
	for _, n := range f.Names {
		a, i := d.AttributeByName(n)
		if a == nil {
			return nil, fmt.Errorf("filter: no attribute %q", n)
		}
		if i == d.ClassIndex {
			return nil, fmt.Errorf("filter: cannot remove the class attribute %q", n)
		}
		drop[n] = true
	}
	var keep []int
	for i, a := range d.Attrs {
		if !drop[a.Name] {
			keep = append(keep, i)
		}
	}
	return keep, nil
}

// KeepAttributes is the complement of RemoveAttributes: it projects onto
// the named columns plus the class.
type KeepAttributes struct {
	Names []string
}

// Name implements Filter.
func (KeepAttributes) Name() string { return "Keep" }

// Apply implements Filter.
func (f KeepAttributes) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	cols, err := f.keepColumns(d)
	if err != nil {
		return nil, err
	}
	return d.Project(cols)
}

// keepColumns resolves the surviving column indices — shared by the row
// path and the columnar batch path.
func (f KeepAttributes) keepColumns(d *dataset.Dataset) ([]int, error) {
	var cols []int
	for _, n := range f.Names {
		_, i := d.AttributeByName(n)
		if i < 0 {
			return nil, fmt.Errorf("filter: no attribute %q", n)
		}
		cols = append(cols, i)
	}
	if d.ClassIndex >= 0 {
		found := false
		for _, c := range cols {
			if c == d.ClassIndex {
				found = true
			}
		}
		if !found {
			cols = append(cols, d.ClassIndex)
		}
	}
	sort.Ints(cols)
	return cols, nil
}

// Chain applies filters in order.
type Chain []Filter

// Name implements Filter.
func (c Chain) Name() string {
	names := make([]string, len(c))
	for i, f := range c {
		names[i] = f.Name()
	}
	return strings.Join(names, "->")
}

// Apply implements Filter.
func (c Chain) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	cur := d
	for _, f := range c {
		next, err := f.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("filter: %s: %w", f.Name(), err)
		}
		cur = next
	}
	return cur, nil
}
