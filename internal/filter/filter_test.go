package filter

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/classify"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func TestDiscretizeEqualWidth(t *testing.T) {
	d := datagen.WeatherNumeric()
	f := &Discretize{Bins: 4}
	out, err := f.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	// temperature and humidity become nominal; outlook/windy/play untouched.
	if !out.Attrs[1].IsNominal() || !out.Attrs[2].IsNominal() {
		t.Fatal("numeric columns not discretised")
	}
	if out.Attrs[1].NumValues() != 4 {
		t.Fatalf("bins = %d", out.Attrs[1].NumValues())
	}
	if !out.Attrs[0].IsNominal() || out.Attrs[0].NumValues() != 3 {
		t.Fatal("outlook disturbed")
	}
	// The original dataset must be untouched.
	if !d.Attrs[1].IsNumeric() {
		t.Fatal("input mutated")
	}
	// Values must be valid bin indices.
	for _, in := range out.Instances {
		v := in.Values[1]
		if dataset.IsMissing(v) {
			continue
		}
		if v < 0 || v > 3 || v != math.Trunc(v) {
			t.Fatalf("bad bin %v", v)
		}
	}
	// A discretised dataset is trainable by nominal-only learners.
	j := classify.NewJ48()
	if err := j.Train(out); err != nil {
		t.Fatal(err)
	}
}

func TestDiscretizeEqualFrequency(t *testing.T) {
	d := dataset.New("u", dataset.NewNumericAttribute("x"),
		dataset.NewNominalAttribute("c", "a", "b"))
	d.ClassIndex = 1
	for i := 0; i < 100; i++ {
		d.MustAdd(dataset.NewInstance([]float64{float64(i), float64(i % 2)}))
	}
	f := &Discretize{Bins: 4, EqualFrequency: true}
	out, err := f.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	counts := out.ValueCounts(0)
	for b, n := range counts {
		if n != 25 {
			t.Fatalf("bin %d holds %v instances, want 25 (counts %v)", b, n, counts)
		}
	}
}

func TestDiscretizeColumnValidation(t *testing.T) {
	d := datagen.WeatherNumeric()
	if _, err := (&Discretize{Columns: []int{99}}).Apply(d); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := (&Discretize{Columns: []int{0}}).Apply(d); err == nil {
		t.Fatal("nominal column accepted")
	}
}

func TestNormalize(t *testing.T) {
	d := datagen.WeatherNumeric()
	out, err := Normalize{}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{1, 2} {
		min, max := math.Inf(1), math.Inf(-1)
		for _, in := range out.Instances {
			v := in.Values[c]
			min, max = math.Min(min, v), math.Max(max, v)
		}
		if math.Abs(min) > 1e-12 || math.Abs(max-1) > 1e-12 {
			t.Fatalf("column %d range [%v,%v]", c, min, max)
		}
	}
}

func TestStandardize(t *testing.T) {
	d := datagen.IrisLike(30, 3)
	out, err := Standardize{}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		var sum, sumSq float64
		for _, in := range out.Instances {
			sum += in.Values[c]
			sumSq += in.Values[c] * in.Values[c]
		}
		n := float64(out.NumInstances())
		mean := sum / n
		sd := math.Sqrt(sumSq/n - mean*mean)
		if math.Abs(mean) > 1e-9 || math.Abs(sd-1) > 1e-9 {
			t.Fatalf("column %d: mean %v sd %v", c, mean, sd)
		}
	}
}

func TestReplaceMissing(t *testing.T) {
	d := datagen.BreastCancer() // has 9 missing cells
	out, err := ReplaceMissing{}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := dataset.Summarize(out).MissingCells; got != 0 {
		t.Fatalf("still %d missing cells", got)
	}
	// node-caps missing cells become the mode ("no").
	_, col := out.AttributeByName("node-caps")
	counts := out.ValueCounts(col)
	orig := d.ValueCounts(col)
	if counts[1] != orig[1]+8 {
		t.Fatalf("mode fill wrong: %v vs %v", counts, orig)
	}
}

func TestRemoveAndKeep(t *testing.T) {
	d := datagen.BreastCancer()
	out, err := RemoveAttributes{Names: []string{"breast", "breast-quad"}}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumAttributes() != 8 {
		t.Fatalf("attrs after remove = %d", out.NumAttributes())
	}
	if out.ClassAttribute().Name != "Class" {
		t.Fatal("class lost")
	}
	if _, err := (RemoveAttributes{Names: []string{"Class"}}).Apply(d); err == nil {
		t.Fatal("class removal accepted")
	}
	if _, err := (RemoveAttributes{Names: []string{"ghost"}}).Apply(d); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	kept, err := KeepAttributes{Names: []string{"node-caps", "deg-malig"}}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if kept.NumAttributes() != 3 { // two named + class
		t.Fatalf("attrs after keep = %d", kept.NumAttributes())
	}
	if kept.ClassAttribute() == nil || kept.ClassAttribute().Name != "Class" {
		t.Fatal("class not retained")
	}
	// Keeping only the signal attributes preserves J48 accuracy.
	j := classify.NewJ48()
	if err := j.Train(kept); err != nil {
		t.Fatal(err)
	}
	if j.Tree().AttrName != "node-caps" {
		t.Fatalf("projected root = %q", j.Tree().AttrName)
	}
}

func TestChain(t *testing.T) {
	d := datagen.WeatherNumeric()
	c := Chain{ReplaceMissing{}, Normalize{}, &Discretize{Bins: 3}}
	if c.Name() != "ReplaceMissingValues->Normalize->Discretize" {
		t.Fatalf("chain name = %q", c.Name())
	}
	out, err := c.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Attrs[1].IsNominal() {
		t.Fatal("chain did not discretise")
	}
	// Chain failure propagates with context.
	bad := Chain{RemoveAttributes{Names: []string{"ghost"}}}
	if _, err := bad.Apply(d); err == nil {
		t.Fatal("failing chain succeeded")
	}
}

// TestFilterPropertyShapePreserved: every filter keeps the instance count
// and never invents missing values (except Discretize keeping them).
func TestFilterPropertyShapePreserved(t *testing.T) {
	f := func(seed int64) bool {
		d := datagen.GaussianClusters(2, 50, 3, 4, seed)
		for _, flt := range []Filter{Normalize{}, Standardize{}, ReplaceMissing{}, &Discretize{Bins: 5}} {
			out, err := flt.Apply(d)
			if err != nil {
				return false
			}
			if out.NumInstances() != d.NumInstances() || out.NumAttributes() != d.NumAttributes() {
				return false
			}
			if dataset.Summarize(out).MissingCells > dataset.Summarize(d).MissingCells {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
