package filter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// batchFilterData builds a mixed numeric/nominal dataset with missing
// cells, nominal class last.
func batchFilterData(t *testing.T, rows int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New("batchfilter",
		dataset.NewNumericAttribute("x0"),
		dataset.NewNumericAttribute("x1"),
		dataset.NewNominalAttribute("colour", "red", "green", "blue"),
		dataset.NewNumericAttribute("x2"),
		dataset.NewNominalAttribute("class", "yes", "no"),
	)
	d.ClassIndex = 4
	for i := 0; i < rows; i++ {
		vals := []float64{
			rng.NormFloat64() * 10,
			5 + rng.Float64()*3,
			float64(rng.Intn(3)),
			float64(rng.Intn(100)),
			float64(rng.Intn(2)),
		}
		for j := 0; j < 4; j++ {
			if rng.Intn(9) == 0 {
				vals[j] = dataset.Missing
			}
		}
		if err := d.Add(dataset.NewInstance(vals)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// assertDatasetsBitIdentical compares schema, class index, every cell
// (Float64bits) and every weight.
func assertDatasetsBitIdentical(t *testing.T, name string, want, got *dataset.Dataset) {
	t.Helper()
	if got.NumAttributes() != want.NumAttributes() {
		t.Fatalf("%s: %d attrs, want %d", name, got.NumAttributes(), want.NumAttributes())
	}
	for c := range want.Attrs {
		wa, ga := want.Attrs[c], got.Attrs[c]
		if wa.Name != ga.Name || wa.IsNumeric() != ga.IsNumeric() || wa.NumValues() != ga.NumValues() {
			t.Fatalf("%s: attr %d mismatch: %+v vs %+v", name, c, ga, wa)
		}
		for v := 0; v < wa.NumValues(); v++ {
			if wa.Value(v) != ga.Value(v) {
				t.Fatalf("%s: attr %d value %d: %q vs %q", name, c, v, ga.Value(v), wa.Value(v))
			}
		}
	}
	if got.ClassIndex != want.ClassIndex {
		t.Fatalf("%s: class index %d, want %d", name, got.ClassIndex, want.ClassIndex)
	}
	if got.NumInstances() != want.NumInstances() {
		t.Fatalf("%s: %d rows, want %d", name, got.NumInstances(), want.NumInstances())
	}
	for i := range want.Instances {
		wi, gi := want.Instances[i], got.Instances[i]
		if wi.Weight != gi.Weight {
			t.Fatalf("%s row %d: weight %v, want %v", name, i, gi.Weight, wi.Weight)
		}
		for c := range wi.Values {
			if math.Float64bits(gi.Values[c]) != math.Float64bits(wi.Values[c]) {
				t.Fatalf("%s row %d col %d: %v, want %v", name, i, c, gi.Values[c], wi.Values[c])
			}
		}
	}
}

// sweepFilters is every filter configuration the batch contract covers.
func sweepFilters() []Filter {
	return []Filter{
		Normalize{},
		Standardize{},
		ReplaceMissing{},
		&Discretize{Bins: 4},
		&Discretize{Bins: 5, EqualFrequency: true},
		&Discretize{Bins: 3, Columns: []int{0, 3}},
		RemoveAttributes{Names: []string{"x1"}},
		KeepAttributes{Names: []string{"x0", "colour"}},
		Chain{ReplaceMissing{}, Normalize{}, &Discretize{Bins: 4}},
		Chain{Standardize{}, RemoveAttributes{Names: []string{"colour"}}},
	}
}

// TestBatchMatchesRowPathAllFilters is the sweep gate for the
// BatchApplier contract: ApplyBatch must equal Apply bit for bit on
// row-backed and column-backed inputs alike.
func TestBatchMatchesRowPathAllFilters(t *testing.T) {
	d := batchFilterData(t, 80, 3)
	cd, err := dataset.FromColumns(d.Relation, d.Attrs, d.ClassIndex, d.Columns(), d.WeightsSlice())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sweepFilters() {
		want, err := f.Apply(d)
		if err != nil {
			t.Fatalf("%s: row path: %v", f.Name(), err)
		}
		for backing, in := range map[string]*dataset.Dataset{"rows": d, "columns": cd} {
			got, err := ApplyColumns(f, in)
			if err != nil {
				t.Fatalf("%s (%s-backed): batch path: %v", f.Name(), backing, err)
			}
			assertDatasetsBitIdentical(t, f.Name()+"/"+backing, want, got)
		}
	}
}

// TestBatchDoesNotMutateInput pins the no-mutation contract on the
// in-place column transforms.
func TestBatchDoesNotMutateInput(t *testing.T) {
	d := batchFilterData(t, 30, 9)
	before, err := d.Clone(), error(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sweepFilters() {
		if _, err := ApplyColumns(f, d); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
	}
	assertDatasetsBitIdentical(t, "input", before, d)
}

// TestBatchErrorsMatchRowPath pins that invalid configurations fail on
// both paths rather than diverging.
func TestBatchErrorsMatchRowPath(t *testing.T) {
	d := batchFilterData(t, 10, 5)
	for _, f := range []Filter{
		&Discretize{Bins: 3, Columns: []int{99}},
		&Discretize{Bins: 3, Columns: []int{2}}, // nominal target
		RemoveAttributes{Names: []string{"ghost"}},
		RemoveAttributes{Names: []string{"class"}},
		KeepAttributes{Names: []string{"ghost"}},
	} {
		if _, err := f.Apply(d); err == nil {
			t.Fatalf("%s: row path accepted invalid config", f.Name())
		}
		if _, err := ApplyColumns(f, d); err == nil {
			t.Fatalf("%s: batch path accepted invalid config", f.Name())
		}
	}
}

// TestChainBatchUsesColumnsEndToEnd: a chain ending in a schema change
// still produces a dataset the wire codec can round-trip.
func TestChainBatchUsesColumnsEndToEnd(t *testing.T) {
	d := batchFilterData(t, 40, 17)
	chain := Chain{ReplaceMissing{}, Normalize{}, &Discretize{Bins: 3}}
	got, err := chain.ApplyBatch(d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := chain.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsBitIdentical(t, chain.Name(), want, got)
	for c, a := range got.Attrs {
		if c != got.ClassIndex && c != 2 && !a.IsNominal() {
			t.Fatalf("col %d still numeric after discretize", c)
		}
	}
}
