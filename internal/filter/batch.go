package filter

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// BatchApplier marks filters with a columnar fast path. ApplyBatch must
// produce a dataset bit-identical to Apply — same schema, same cells,
// same weights — but built column-first (dataset.FromColumns), so a
// filterBatch service hop decodes a dmb1 block, transforms the column
// copy in place, and re-encodes without ever materialising ARFF text.
type BatchApplier interface {
	Filter
	ApplyBatch(d *dataset.Dataset) (*dataset.Dataset, error)
}

// ApplyColumns transforms d with f over the columnar batch path when f
// implements BatchApplier, falling back to the row path otherwise.
// Inputs are never mutated either way.
func ApplyColumns(f Filter, d *dataset.Dataset) (*dataset.Dataset, error) {
	if ba, ok := f.(BatchApplier); ok {
		return ba.ApplyBatch(d)
	}
	return f.Apply(d)
}

// cloneAttrs deep-copies the schema for a filter output.
func cloneAttrs(d *dataset.Dataset) []*dataset.Attribute {
	attrs := make([]*dataset.Attribute, len(d.Attrs))
	for i, a := range d.Attrs {
		attrs[i] = a.Clone()
	}
	return attrs
}

// ApplyBatch implements BatchApplier. The rescale statistics come from
// the same NumericColumn scan the row path uses, so min/max — and every
// (v-min)/span cell — are bit-identical; only the write loop differs,
// transforming a column copy in place.
func (Normalize) ApplyBatch(d *dataset.Dataset) (*dataset.Dataset, error) {
	cols := d.ColumnsCopy()
	for c, a := range d.Attrs {
		if c == d.ClassIndex || !a.IsNumeric() {
			continue
		}
		vals := d.NumericColumn(c)
		if len(vals) == 0 {
			continue
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			min, max = math.Min(min, v), math.Max(max, v)
		}
		span := max - min
		for i, v := range cols[c] {
			if dataset.IsMissing(v) {
				continue
			}
			if span == 0 {
				cols[c][i] = 0
			} else {
				cols[c][i] = (v - min) / span
			}
		}
	}
	return dataset.FromColumns(d.Relation, cloneAttrs(d), d.ClassIndex, cols, d.WeightsSlice())
}

// ApplyBatch implements BatchApplier (see Normalize.ApplyBatch; the
// mean/variance accumulation is the row path's, in the same order).
func (Standardize) ApplyBatch(d *dataset.Dataset) (*dataset.Dataset, error) {
	cols := d.ColumnsCopy()
	for c, a := range d.Attrs {
		if c == d.ClassIndex || !a.IsNumeric() {
			continue
		}
		vals := d.NumericColumn(c)
		if len(vals) < 2 {
			continue
		}
		var sum, sumSq float64
		for _, v := range vals {
			sum += v
			sumSq += v * v
		}
		n := float64(len(vals))
		mean := sum / n
		variance := sumSq/n - mean*mean
		sd := math.Sqrt(math.Max(variance, 0))
		for i, v := range cols[c] {
			if dataset.IsMissing(v) {
				continue
			}
			if sd == 0 {
				cols[c][i] = 0
			} else {
				cols[c][i] = (v - mean) / sd
			}
		}
	}
	return dataset.FromColumns(d.Relation, cloneAttrs(d), d.ClassIndex, cols, d.WeightsSlice())
}

// ApplyBatch implements BatchApplier. Means and modes come from the same
// NumericColumn/ValueCounts scans as the row path (ascending-index mode
// tie-break), so the fills are bit-identical.
func (ReplaceMissing) ApplyBatch(d *dataset.Dataset) (*dataset.Dataset, error) {
	cols := d.ColumnsCopy()
	for c, a := range d.Attrs {
		if c == d.ClassIndex {
			continue
		}
		var fill float64
		switch {
		case a.IsNumeric():
			vals := d.NumericColumn(c)
			if len(vals) == 0 {
				continue
			}
			var sum float64
			for _, v := range vals {
				sum += v
			}
			fill = sum / float64(len(vals))
		case a.IsNominal():
			counts := d.ValueCounts(c)
			best, bestW := -1, -1.0
			for v, w := range counts {
				if w > bestW {
					best, bestW = v, w
				}
			}
			if best < 0 {
				continue
			}
			fill = float64(best)
		default:
			continue
		}
		for i, v := range cols[c] {
			if dataset.IsMissing(v) {
				cols[c][i] = fill
			}
		}
	}
	return dataset.FromColumns(d.Relation, cloneAttrs(d), d.ClassIndex, cols, d.WeightsSlice())
}

// ApplyBatch implements BatchApplier for the schema-changing case: the
// cutpoints and output schema come from the shared plan, then each
// target column is binned in place on the copy.
func (f *Discretize) ApplyBatch(d *dataset.Dataset) (*dataset.Dataset, error) {
	target, cuts, attrs, err := f.plan(d)
	if err != nil {
		return nil, err
	}
	cols := d.ColumnsCopy()
	for c := range target {
		for i, v := range cols[c] {
			if dataset.IsMissing(v) {
				continue
			}
			cols[c][i] = float64(binOf(cuts[c], v))
		}
	}
	return dataset.FromColumns(d.Relation, attrs, d.ClassIndex, cols, d.WeightsSlice())
}

// projectColumns builds a column-backed projection onto keep — the
// batch-path twin of dataset.Project.
func projectColumns(d *dataset.Dataset, keep []int) (*dataset.Dataset, error) {
	src := d.Columns()
	rows := d.NumInstances()
	attrs := make([]*dataset.Attribute, len(keep))
	cols := make([][]float64, len(keep))
	slab := make([]float64, rows*len(keep))
	classAt := -1
	for i, c := range keep {
		attrs[i] = d.Attrs[c].Clone()
		cols[i] = slab[i*rows : (i+1)*rows : (i+1)*rows]
		copy(cols[i], src[c])
		if c == d.ClassIndex {
			classAt = i
		}
	}
	return dataset.FromColumns(d.Relation, attrs, classAt, cols, d.WeightsSlice())
}

// ApplyBatch implements BatchApplier via column projection.
func (f RemoveAttributes) ApplyBatch(d *dataset.Dataset) (*dataset.Dataset, error) {
	keep, err := f.keepColumns(d)
	if err != nil {
		return nil, err
	}
	return projectColumns(d, keep)
}

// ApplyBatch implements BatchApplier via column projection.
func (f KeepAttributes) ApplyBatch(d *dataset.Dataset) (*dataset.Dataset, error) {
	keep, err := f.keepColumns(d)
	if err != nil {
		return nil, err
	}
	return projectColumns(d, keep)
}

// ApplyBatch implements BatchApplier: every stage runs its own columnar
// fast path, so a whole chain transforms blocks without a single row
// materialisation.
func (c Chain) ApplyBatch(d *dataset.Dataset) (*dataset.Dataset, error) {
	cur := d
	for _, f := range c {
		next, err := ApplyColumns(f, cur)
		if err != nil {
			return nil, fmt.Errorf("filter: %s: %w", f.Name(), err)
		}
		cur = next
	}
	return cur, nil
}
