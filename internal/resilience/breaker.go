package resilience

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a breaker's position in the closed → open → half-open cycle.
type State int

const (
	// StateClosed admits all traffic.
	StateClosed State = iota
	// StateHalfOpen admits a bounded number of probe calls.
	StateHalfOpen
	// StateOpen rejects traffic until the cooldown elapses.
	StateOpen
)

// String renders the state for logs and metric labels.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a circuit breaker. The zero value uses the
// defaults noted per field.
type BreakerConfig struct {
	// FailureThreshold trips the breaker after this many consecutive
	// retryable failures; <=0 means 5.
	FailureThreshold int
	// ErrorRate additionally trips the breaker when the failure fraction
	// over the rolling Window reaches it; 0 disables rate tripping.
	ErrorRate float64
	// Window is the rolling outcome window backing ErrorRate; <=0 means 20.
	Window int
	// Cooldown is how long an open breaker rejects before allowing a
	// half-open probe; <=0 means 5s.
	Cooldown time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close a
	// half-open breaker; <=0 means 1.
	HalfOpenSuccesses int
}

func (c BreakerConfig) failureThreshold() int {
	if c.FailureThreshold <= 0 {
		return 5
	}
	return c.FailureThreshold
}

func (c BreakerConfig) window() int {
	if c.Window <= 0 {
		return 20
	}
	return c.Window
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return 5 * time.Second
	}
	return c.Cooldown
}

func (c BreakerConfig) halfOpenSuccesses() int {
	if c.HalfOpenSuccesses <= 0 {
		return 1
	}
	return c.HalfOpenSuccesses
}

// Breaker is a three-state circuit breaker for one endpoint. A nil
// *Breaker admits everything and records nothing, so callers can thread
// an optional breaker without nil checks.
type Breaker struct {
	cfg      BreakerConfig
	endpoint string
	observer *obs.Registry
	now      func() time.Time

	mu          sync.Mutex
	state       State
	consecutive int    // consecutive retryable failures while closed
	outcomes    []bool // rolling window of outcomes (true = success)
	outcomeIdx  int
	outcomeFill int
	openedAt    time.Time
	probeInUse  bool // a half-open probe call is in flight
	probePassed int  // consecutive probe successes while half-open
}

// NewBreaker returns a closed breaker for an endpoint. reg receives the
// breaker's metrics; nil means obs.Default.
func NewBreaker(endpoint string, cfg BreakerConfig, reg *obs.Registry) *Breaker {
	if reg == nil {
		reg = obs.Default
	}
	b := &Breaker{cfg: cfg, endpoint: endpoint, observer: reg, now: time.Now}
	b.setStateGauge(StateClosed)
	return b
}

// Allow reports whether a call may proceed. On an open breaker whose
// cooldown has elapsed it transitions to half-open and admits one probe;
// every admitted half-open call must be answered with Record or the
// probe slot stays occupied.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cfg.cooldown() {
			return false
		}
		b.toHalfOpenLocked()
		b.probeInUse = true
		return true
	case StateHalfOpen:
		if b.probeInUse {
			return false
		}
		b.probeInUse = true
		return true
	}
	return true
}

// Record feeds a call outcome back into the breaker. Success and
// Permanent outcomes count as healthy (a soap:Client fault means the
// caller erred, not the endpoint); Retryable counts as a failure;
// Aborted and Busy release any probe slot without judging the endpoint —
// a shed (ServerBusy) request is deliberate admission control by a live
// server, so it must neither trip the consecutive-failure counter nor
// count toward the rolling error rate.
func (b *Breaker) Record(cls Class) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch cls {
	case Aborted, Busy:
		b.probeInUse = false
	case Retryable:
		b.recordFailureLocked()
	default: // Success, Permanent
		b.recordSuccessLocked()
	}
}

// State returns the breaker's current state (open breakers whose
// cooldown has elapsed still report open until a call probes them).
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Endpoint returns the endpoint the breaker guards.
func (b *Breaker) Endpoint() string {
	if b == nil {
		return ""
	}
	return b.endpoint
}

func (b *Breaker) recordSuccessLocked() {
	b.pushOutcomeLocked(true)
	switch b.state {
	case StateClosed:
		b.consecutive = 0
	case StateHalfOpen:
		b.probeInUse = false
		b.probePassed++
		if b.probePassed >= b.cfg.halfOpenSuccesses() {
			b.toClosedLocked()
		}
	case StateOpen:
		// A straggler from before the trip; ignore.
	}
}

func (b *Breaker) recordFailureLocked() {
	b.pushOutcomeLocked(false)
	switch b.state {
	case StateClosed:
		b.consecutive++
		if b.consecutive >= b.cfg.failureThreshold() || b.rateTrippedLocked() {
			b.toOpenLocked()
		}
	case StateHalfOpen:
		b.probeInUse = false
		b.toOpenLocked()
	case StateOpen:
	}
}

// rateTrippedLocked reports whether the rolling-window failure rate has
// reached the configured trip rate (only once the window is full, so a
// single early failure cannot trip a 100% rate).
func (b *Breaker) rateTrippedLocked() bool {
	rate := b.cfg.ErrorRate
	if rate <= 0 || b.outcomeFill < b.cfg.window() {
		return false
	}
	failures := 0
	for i := 0; i < b.outcomeFill; i++ {
		if !b.outcomes[i] {
			failures++
		}
	}
	return float64(failures)/float64(b.outcomeFill) >= rate
}

func (b *Breaker) pushOutcomeLocked(success bool) {
	if b.outcomes == nil {
		b.outcomes = make([]bool, b.cfg.window())
	}
	b.outcomes[b.outcomeIdx] = success
	b.outcomeIdx = (b.outcomeIdx + 1) % len(b.outcomes)
	if b.outcomeFill < len(b.outcomes) {
		b.outcomeFill++
	}
}

func (b *Breaker) toOpenLocked() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.consecutive = 0
	b.probePassed = 0
	b.observer.Counter("resilience_breaker_opens_total", "endpoint="+b.endpoint).Inc()
	b.setStateGauge(StateOpen)
	resLog.Warn(nil, "breaker_open", "endpoint", b.endpoint)
}

func (b *Breaker) toHalfOpenLocked() {
	b.state = StateHalfOpen
	b.probePassed = 0
	b.probeInUse = false
	b.observer.Counter("resilience_breaker_halfopen_total", "endpoint="+b.endpoint).Inc()
	b.setStateGauge(StateHalfOpen)
	resLog.Info(nil, "breaker_half_open", "endpoint", b.endpoint)
}

func (b *Breaker) toClosedLocked() {
	b.state = StateClosed
	b.consecutive = 0
	b.probePassed = 0
	b.probeInUse = false
	b.observer.Counter("resilience_breaker_closes_total", "endpoint="+b.endpoint).Inc()
	b.setStateGauge(StateClosed)
	resLog.Info(nil, "breaker_closed", "endpoint", b.endpoint)
}

// setStateGauge exports the state as 0 (closed) / 1 (half-open) / 2 (open).
func (b *Breaker) setStateGauge(s State) {
	b.observer.Gauge("resilience_breaker_state", "endpoint="+b.endpoint).Set(int64(s))
}

// BreakerSet lazily manages one breaker per endpoint under a shared
// configuration. A nil *BreakerSet hands out nil breakers, which admit
// everything.
type BreakerSet struct {
	cfg      BreakerConfig
	observer *obs.Registry

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet returns an empty set. reg receives every breaker's
// metrics; nil means obs.Default.
func NewBreakerSet(cfg BreakerConfig, reg *obs.Registry) *BreakerSet {
	return &BreakerSet{cfg: cfg, observer: reg, m: map[string]*Breaker{}}
}

// For returns (creating on first use) the endpoint's breaker.
func (s *BreakerSet) For(endpoint string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[endpoint]
	if !ok {
		b = NewBreaker(endpoint, s.cfg, s.observer)
		s.m[endpoint] = b
	}
	return b
}

// Prune drops breakers for endpoints no longer in keep, so a registry
// refresh does not leak state for services that left the rotation.
func (s *BreakerSet) Prune(keep map[string]bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for ep := range s.m {
		if !keep[ep] {
			delete(s.m, ep)
		}
	}
}
