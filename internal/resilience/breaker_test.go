package resilience

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock, *obs.Registry) {
	reg := obs.NewRegistry()
	b := NewBreaker("http://svc", cfg, reg)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clock.now
	return b, clock, reg
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b, _, reg := newTestBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(Retryable)
		if b.State() != StateClosed {
			t.Fatalf("tripped after %d failures, threshold is 3", i+1)
		}
	}
	// A success resets the consecutive count.
	b.Record(Success)
	b.Record(Retryable)
	b.Record(Retryable)
	if b.State() != StateClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	b.Record(Retryable)
	if b.State() != StateOpen {
		t.Fatal("breaker did not open at the threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if got := reg.Counter("resilience_breaker_opens_total", "endpoint=http://svc").Value(); got != 1 {
		t.Fatalf("opens counter = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	b, clock, _ := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Record(Retryable)
	if b.State() != StateOpen {
		t.Fatal("breaker not open")
	}
	clock.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Failed probe reopens.
	b.Record(Retryable)
	if b.State() != StateOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	clock.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Record(Success)
	if b.State() != StateClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected traffic")
	}
}

func TestBreakerErrorRateTrip(t *testing.T) {
	b, _, _ := newTestBreaker(BreakerConfig{
		FailureThreshold: 100, // out of reach: only the rate can trip
		ErrorRate:        0.5,
		Window:           4,
		Cooldown:         time.Second,
	})
	// Alternate success/failure: 50% failure rate over a full window.
	b.Record(Retryable)
	b.Record(Success)
	b.Record(Retryable)
	if b.State() != StateClosed {
		t.Fatal("rate tripped before the window filled")
	}
	b.Record(Success)
	// Window full at 2/4 failures; next failure evaluates at >= 0.5.
	b.Record(Retryable)
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open at 50%% error rate", b.State())
	}
}

// soap:Client faults mean the caller erred, not the endpoint: they must
// never trip the breaker. Aborted outcomes release the probe slot.
func TestBreakerOutcomeSemantics(t *testing.T) {
	b, clock, _ := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	for i := 0; i < 10; i++ {
		b.Record(Permanent)
	}
	if b.State() != StateClosed {
		t.Fatal("permanent (caller) faults tripped the breaker")
	}
	b.Record(Retryable)
	clock.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Record(Aborted) // caller gave up; endpoint unjudged
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open after aborted probe", b.State())
	}
	if !b.Allow() {
		t.Fatal("aborted probe did not release the probe slot")
	}
}

func TestNilBreakerIsOpenBar(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker rejected a call")
	}
	b.Record(Retryable) // must not panic
	if b.State() != StateClosed {
		t.Fatal("nil breaker not closed")
	}
	var s *BreakerSet
	if s.For("x") != nil {
		t.Fatal("nil set returned a breaker")
	}
	s.Prune(nil) // must not panic
}

func TestBreakerSetPrune(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{FailureThreshold: 1}, obs.NewRegistry())
	s.For("a").Record(Retryable)
	s.For("b")
	s.Prune(map[string]bool{"b": true})
	if got := s.For("a").State(); got != StateClosed {
		t.Fatalf("pruned breaker kept state %v", got)
	}
}
