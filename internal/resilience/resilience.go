// Package resilience is the policy-driven invocation substrate behind
// every remote call the toolkit makes. The paper's headline claim for
// FAEHIM is fault-tolerant composition: when a deployed data-mining
// service fails, the workflow engine locates an equivalent service via
// the UDDI registry and re-invokes it (§3, §4). This package provides
// the three mechanisms that claim needs in practice:
//
//   - Policy: retry with exponential backoff + deterministic jitter and
//     fault classification (network errors and soap:Server faults are
//     retryable, soap:Client faults are not, a dead caller context
//     aborts).
//   - Breaker: a per-endpoint three-state circuit breaker (closed →
//     open on consecutive-failure or error-rate threshold → half-open
//     probe) so a dead service stops receiving traffic instead of
//     burning every caller's retry budget.
//   - Pool: health-aware endpoint selection that ejects tripped
//     endpoints from the rotation and refreshes itself from a registry
//     inquiry — the paper's UDDI failover step — so newly published
//     equivalent services join the rotation and dead ones leave.
//
// Every state change is exported through internal/obs so /metrics shows
// the failover happening.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/url"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrOpen reports a call rejected because the endpoint's circuit breaker
// is open. It is retryable: a later attempt may find the breaker
// half-open or another endpoint healthy.
var ErrOpen = errors.New("resilience: circuit open")

// ErrNoHealthyEndpoint reports a pool pick that found no endpoint whose
// breaker admits traffic. It is retryable: cooldowns elapse and registry
// refreshes add endpoints.
var ErrNoHealthyEndpoint = errors.New("resilience: no healthy endpoint")

// Class buckets a call outcome for retry and breaker decisions.
type Class int

const (
	// Success is a nil error.
	Success Class = iota
	// Retryable failures (network errors, soap:Server faults, attempt
	// timeouts) are worth re-invoking, preferably elsewhere.
	Retryable
	// Permanent failures (soap:Client faults — bad requests) fail
	// immediately: retrying an unknown classifier never helps.
	Permanent
	// Aborted means the caller's context ended; no further attempts.
	Aborted
	// Busy means the server shed the request under admission control
	// (a BusyFaultCode fault). It is retried like Retryable — honouring
	// any Retry-After hint — but it is deliberate load shedding by a
	// live server, not evidence of endpoint failure, so breakers stay
	// neutral: a shedding replica must not be ejected from the rotation.
	Busy
)

// String renders the class for logs and metric labels.
func (c Class) String() string {
	switch c {
	case Success:
		return "success"
	case Retryable:
		return "retryable"
	case Permanent:
		return "permanent"
	case Aborted:
		return "aborted"
	case Busy:
		return "busy"
	default:
		return "unknown"
	}
}

// BusyFaultCode is the fault code of a request shed by server-side
// admission control (queue full, deadline unmeetable, or draining). The
// SOAP 1.1 dotted form keeps it a soap:Server subclass on the wire while
// letting clients distinguish deliberate shedding from real failure.
const BusyFaultCode = "soap:Server.Busy"

// RetryAfter extracts a server's Retry-After hint from an error chain
// (soap faults expose it via RetryAfterHint). Zero means no hint.
func RetryAfter(err error) time.Duration {
	var h interface{ RetryAfterHint() time.Duration }
	if errors.As(err, &h) {
		if d := h.RetryAfterHint(); d > 0 {
			return d
		}
	}
	return 0
}

// ClassifyErr buckets an error by its shape alone. SOAP faults are
// recognised through the FaultCode interface (the same contract
// obs.FaultClass uses) so this package needs no dependency on the soap
// package. A bare context.DeadlineExceeded is Retryable here — it is the
// signature of a per-attempt timeout; use Classify when a caller context
// is available to distinguish the caller's own deadline.
func ClassifyErr(err error) Class {
	if err == nil {
		return Success
	}
	if errors.Is(err, context.Canceled) {
		return Aborted
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Retryable
	}
	if errors.Is(err, ErrOpen) || errors.Is(err, ErrNoHealthyEndpoint) {
		return Retryable
	}
	var fc interface{ FaultCode() string }
	if errors.As(err, &fc) {
		switch fc.FaultCode() {
		case "soap:Client":
			return Permanent
		case BusyFaultCode:
			return Busy
		default:
			return Retryable
		}
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return Retryable
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return Retryable
	}
	return Permanent
}

// Classify buckets an error in the light of the caller's context: once
// ctx itself is done the outcome is Aborted regardless of the error —
// the caller's deadline has passed and no retry can run.
func Classify(ctx context.Context, err error) Class {
	if ctx != nil && ctx.Err() != nil {
		return Aborted
	}
	return ClassifyErr(err)
}

// Policy is a retry policy: attempt budget plus exponential backoff with
// deterministic, seeded jitter. The zero value (and a nil *Policy) is
// usable with the defaults below.
type Policy struct {
	// MaxAttempts bounds total attempts (first try included); <=0 means 3.
	MaxAttempts int
	// BackoffBase is the first retry delay, doubling each retry up to
	// BackoffMax; <=0 means 50ms (and 2s for the cap). Each delay is
	// jittered to 50-150% of its nominal value.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the jitter sequence deterministic; 0 means 1.
	Seed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// defaultPolicy backs nil *Policy receivers.
var defaultPolicy = &Policy{}

// Attempts returns the attempt budget.
func (p *Policy) Attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// Backoff returns the jittered delay after attempt completed attempts
// (1-based): base<<(attempt-1) capped at max, scaled by a deterministic
// uniform factor in [0.5, 1.5).
func (p *Policy) Backoff(attempt int) time.Duration {
	if p == nil {
		p = defaultPolicy
	}
	base := p.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.BackoffMax
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	p.mu.Lock()
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		p.rng = rand.New(rand.NewSource(seed))
	}
	jitter := time.Duration(p.rng.Int63n(int64(d)))
	p.mu.Unlock()
	return d/2 + jitter
}

// Sleep waits the attempt's backoff or until ctx ends, returning ctx's
// error in the latter case.
func (p *Policy) Sleep(ctx context.Context, attempt int) error {
	return p.SleepHint(ctx, attempt, 0)
}

// SleepHint is Sleep honouring a server's Retry-After hint: the wait is
// the larger of the policy's backoff and the hint, so a shedding server
// is never re-approached before the moment it asked for.
func (p *Policy) SleepHint(ctx context.Context, attempt int, hint time.Duration) error {
	d := p.Backoff(attempt)
	if hint > d {
		d = hint
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var resLog = obs.L("resilience")
