package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// HedgePolicy tunes Pool.DoHedged. The zero value (and a nil
// *HedgePolicy) uses the defaults noted per field.
type HedgePolicy struct {
	// Delay fixes the hedge delay; 0 derives it from the pool's EWMA of
	// successful call latency.
	Delay time.Duration
	// EWMAFactor scales the EWMA into a delay — hedge once the primary
	// attempt has been in flight this many times longer than a typical
	// call; <=0 means 2.
	EWMAFactor float64
	// MinDelay / MaxDelay clamp the derived delay; <=0 means 20ms / 2s.
	// Before the pool has any latency signal the delay is MaxDelay, so a
	// cold pool hedges only against a genuinely stuck attempt.
	MinDelay time.Duration
	MaxDelay time.Duration
}

func (hp *HedgePolicy) minDelay() time.Duration {
	if hp == nil || hp.MinDelay <= 0 {
		return 20 * time.Millisecond
	}
	return hp.MinDelay
}

func (hp *HedgePolicy) maxDelay() time.Duration {
	if hp == nil || hp.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return hp.MaxDelay
}

func (hp *HedgePolicy) factor() float64 {
	if hp == nil || hp.EWMAFactor <= 0 {
		return 2
	}
	return hp.EWMAFactor
}

// HedgeDelay resolves the delay before a backup attempt launches: the
// fixed Delay when set, otherwise EWMAFactor times the observed latency
// EWMA clamped to [MinDelay, MaxDelay].
func (hp *HedgePolicy) HedgeDelay(ewma time.Duration) time.Duration {
	if hp != nil && hp.Delay > 0 {
		return hp.Delay
	}
	if ewma <= 0 {
		return hp.maxDelay()
	}
	d := time.Duration(float64(ewma) * hp.factor())
	if min := hp.minDelay(); d < min {
		d = min
	}
	if max := hp.maxDelay(); d > max {
		d = max
	}
	return d
}

// HedgeStats accumulates hedge outcomes for one logical scope (a
// workflow step, a request). Attach it with WithHedgeStats; DoHedged
// increments it when present.
type HedgeStats struct {
	// Launched counts backup attempts started.
	Launched atomic.Int64
	// Wins counts calls the backup attempt won.
	Wins atomic.Int64
}

type hedgeStatsKey struct{}

// WithHedgeStats attaches a HedgeStats collector to ctx so callers can
// see per-scope hedge activity without threading a return value through
// every layer. A nil hs returns ctx unchanged.
func WithHedgeStats(ctx context.Context, hs *HedgeStats) context.Context {
	if hs == nil {
		return ctx
	}
	return context.WithValue(ctx, hedgeStatsKey{}, hs)
}

// HedgeStatsFrom returns the collector attached by WithHedgeStats.
func HedgeStatsFrom(ctx context.Context) (*HedgeStats, bool) {
	hs, ok := ctx.Value(hedgeStatsKey{}).(*HedgeStats)
	return hs, ok
}

// observeLatency feeds one successful call's wall time into the pool's
// latency EWMA (factor 1/4: responsive but not jumpy — the same
// smoothing the admission layer uses for its service-time estimate).
func (p *Pool) observeLatency(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		old := p.latEWMAns.Load()
		next := int64(d)
		if old > 0 {
			next = (3*old + int64(d)) / 4
		}
		if p.latEWMAns.CompareAndSwap(old, next) {
			return
		}
	}
}

// LatencyEWMA returns the pool's smoothed successful-call latency (zero
// until the first success).
func (p *Pool) LatencyEWMA() time.Duration {
	return time.Duration(p.latEWMAns.Load())
}

// raceResult is one attempt's outcome inside a hedged race.
type raceResult struct {
	ep  string
	err error
	dur time.Duration
}

// DoHedged is Do with tail-latency hedging: each attempt round starts on
// one healthy endpoint and, if no answer arrives within the hedge delay
// (HedgePolicy.HedgeDelay over the pool's latency EWMA), launches one
// backup attempt on a different healthy endpoint. The first success wins
// and the loser's context is cancelled; DoHedged waits for the loser to
// return before reporting, so no attempt goroutine outlives the call. A
// cancelled loser records a breaker-neutral outcome — losing a race is
// not evidence of endpoint failure.
//
// Hedging re-sends the same invocation, so fn MUST be idempotent: both
// attempts can execute to completion on different replicas. Reserve it
// for read and pure-compute operations (scoring, inquiry, deterministic
// training against a content-addressed store) and keep mutating calls on
// Do.
func (p *Pool) DoHedged(ctx context.Context, pol *Policy, hp *HedgePolicy, fn func(ctx context.Context, endpoint string) error) (string, error) {
	attempts := pol.Attempts()
	var lastEp string
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if ctx.Err() != nil {
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return lastEp, lastErr
		}
		p.MaybeRefresh(ctx)
		var skip []string
		if lastEp != "" {
			skip = []string{lastEp}
		}
		ep, pickErr := p.Pick(skip...)
		if pickErr != nil {
			lastErr = pickErr
			_ = p.Refresh(ctx)
		} else {
			winEp, err := p.hedgedRace(ctx, hp, ep, fn)
			if err == nil {
				return winEp, nil
			}
			lastEp, lastErr = winEp, err
			if cls := Classify(ctx, err); cls != Retryable && cls != Busy {
				return winEp, err
			}
		}
		if attempt < attempts {
			p.observer.Counter("resilience_retries_total").Inc()
			if err := pol.SleepHint(ctx, attempt, RetryAfter(lastErr)); err != nil {
				return lastEp, lastErr
			}
		}
	}
	return lastEp, lastErr
}

// hedgedRace runs one attempt round: the primary attempt immediately, a
// backup on a second healthy endpoint once the hedge delay elapses, the
// first success winning. Every launched attempt is Recorded and awaited
// before return.
func (p *Pool) hedgedRace(ctx context.Context, hp *HedgePolicy, primary string, fn func(ctx context.Context, endpoint string) error) (string, error) {
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan raceResult, 2)
	var wg sync.WaitGroup
	launch := func(ep string) {
		wg.Add(1)
		go func() {
			began := time.Now()
			err := fn(raceCtx, ep)
			results <- raceResult{ep: ep, err: err, dur: time.Since(began)}
			wg.Done()
		}()
	}
	launch(primary)
	launched := 1

	timer := time.NewTimer(hp.HedgeDelay(p.LatencyEWMA()))
	defer timer.Stop()

	hs, _ := HedgeStatsFrom(ctx)
	var winEp string
	var raceErr error
	settled := 0
	for settled < launched {
		select {
		case r := <-results:
			settled++
			p.Record(r.ep, r.err)
			if r.err == nil {
				if winEp == "" {
					winEp = r.ep
					p.observeLatency(r.dur)
					if launched > 1 && r.ep != primary {
						p.observer.Counter("resilience_hedge_wins_total").Inc()
						if hs != nil {
							hs.Wins.Add(1)
						}
						resLog.Debug(ctx, "hedge_win", "endpoint", r.ep, "primary", primary)
					}
					cancel() // the loser's attempt is moot; reel it in
				}
			} else if winEp == "" {
				raceErr = r.err
			}
		case <-timer.C:
			if winEp != "" || launched > 1 {
				continue
			}
			backup, err := p.Pick(primary)
			if err != nil {
				continue // no second healthy endpoint; ride the primary
			}
			if backup == primary {
				// Pick only returns a skipped endpoint when it is the lone
				// healthy one; answer the pick neutrally (it may hold a
				// half-open probe slot) and skip the hedge.
				p.Record(backup, context.Canceled)
				continue
			}
			p.observer.Counter("resilience_hedges_total").Inc()
			if hs != nil {
				hs.Launched.Add(1)
			}
			launch(backup)
			launched++
		}
	}
	wg.Wait()
	if winEp != "" {
		return winEp, nil
	}
	return primary, raceErr
}
