package resilience

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// slowFastFns returns a call function where endpoint "slow" blocks until
// cancelled (or the stall elapses) and every other endpoint answers in a
// few milliseconds. slowCancelled records how long the slow attempt
// lived before its context was cancelled (-1 while unset).
func slowFastFns(stall time.Duration, slowLived *atomic.Int64) func(ctx context.Context, ep string) error {
	return func(ctx context.Context, ep string) error {
		if ep == "slow" {
			began := time.Now()
			select {
			case <-time.After(stall):
				return nil
			case <-ctx.Done():
				if slowLived != nil {
					slowLived.Store(int64(time.Since(began)))
				}
				return ctx.Err()
			}
		}
		time.Sleep(2 * time.Millisecond)
		return nil
	}
}

func TestHedgeDelay(t *testing.T) {
	var hp *HedgePolicy // nil policy: all defaults
	if got := hp.HedgeDelay(50 * time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("HedgeDelay(50ms) = %v, want 100ms (2x EWMA)", got)
	}
	if got := hp.HedgeDelay(time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("HedgeDelay(1ms) = %v, want the 20ms floor", got)
	}
	if got := hp.HedgeDelay(0); got != 2*time.Second {
		t.Fatalf("HedgeDelay(0) = %v, want MaxDelay for a cold pool", got)
	}
	if got := hp.HedgeDelay(10 * time.Second); got != 2*time.Second {
		t.Fatalf("HedgeDelay(10s) = %v, want the 2s ceiling", got)
	}
	fixed := &HedgePolicy{Delay: 7 * time.Millisecond}
	if got := fixed.HedgeDelay(50 * time.Millisecond); got != 7*time.Millisecond {
		t.Fatalf("fixed HedgeDelay = %v, want 7ms", got)
	}
	tuned := &HedgePolicy{EWMAFactor: 4, MinDelay: time.Millisecond, MaxDelay: time.Minute}
	if got := tuned.HedgeDelay(50 * time.Millisecond); got != 200*time.Millisecond {
		t.Fatalf("tuned HedgeDelay = %v, want 200ms (4x EWMA)", got)
	}
}

func TestPoolLatencyEWMA(t *testing.T) {
	p := NewPool([]string{"a"}, WithObserver(obs.NewRegistry()))
	if p.LatencyEWMA() != 0 {
		t.Fatalf("cold pool EWMA = %v, want 0", p.LatencyEWMA())
	}
	p.observeLatency(100 * time.Millisecond)
	if got := p.LatencyEWMA(); got != 100*time.Millisecond {
		t.Fatalf("first observation EWMA = %v, want 100ms", got)
	}
	p.observeLatency(200 * time.Millisecond)
	if got := p.LatencyEWMA(); got != 125*time.Millisecond {
		t.Fatalf("EWMA after 100ms,200ms = %v, want 125ms ((3*100+200)/4)", got)
	}
	// Do's success path must feed the EWMA.
	p2 := NewPool([]string{"a"}, WithObserver(obs.NewRegistry()))
	_, err := p2.Do(context.Background(), nil, func(ctx context.Context, ep string) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.LatencyEWMA() < 5*time.Millisecond {
		t.Fatalf("Do did not feed the latency EWMA: %v", p2.LatencyEWMA())
	}
}

// TestDoHedgedBackupWins: the primary stalls past the hedge delay, the
// backup answers, the call returns the backup's endpoint quickly, and
// the loser is cancelled promptly rather than running out its stall.
func TestDoHedgedBackupWins(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool([]string{"slow", "fast"}, WithObserver(reg))
	var slowLived atomic.Int64
	slowLived.Store(-1)
	var hs HedgeStats
	ctx := WithHedgeStats(context.Background(), &hs)

	began := time.Now()
	ep, err := p.DoHedged(ctx, nil, &HedgePolicy{Delay: 20 * time.Millisecond},
		slowFastFns(5*time.Second, &slowLived))
	elapsed := time.Since(began)
	if err != nil {
		t.Fatal(err)
	}
	if ep != "fast" {
		t.Fatalf("winner = %q, want the hedged backup", ep)
	}
	// DoHedged awaits the loser, so the cancellation must have landed.
	if lived := slowLived.Load(); lived < 0 || time.Duration(lived) > time.Second {
		t.Fatalf("slow attempt lived %v before cancel, want prompt cancellation", time.Duration(lived))
	}
	if elapsed > time.Second {
		t.Fatalf("hedged call took %v, want well under the 5s stall", elapsed)
	}
	if hs.Launched.Load() != 1 || hs.Wins.Load() != 1 {
		t.Fatalf("stats launched=%d wins=%d, want 1/1", hs.Launched.Load(), hs.Wins.Load())
	}
	snap := reg.Snapshot()
	if snap.Counters["resilience_hedges_total"] != 1 {
		t.Fatalf("resilience_hedges_total = %d, want 1", snap.Counters["resilience_hedges_total"])
	}
	if snap.Counters["resilience_hedge_wins_total"] != 1 {
		t.Fatalf("resilience_hedge_wins_total = %d, want 1", snap.Counters["resilience_hedge_wins_total"])
	}
}

// TestDoHedgedPrimaryWins: a healthy primary answers inside the hedge
// delay, so no backup launches at all.
func TestDoHedgedPrimaryWins(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool([]string{"fast", "other"}, WithObserver(reg))
	var hs HedgeStats
	ctx := WithHedgeStats(context.Background(), &hs)
	ep, err := p.DoHedged(ctx, nil, &HedgePolicy{Delay: 500 * time.Millisecond},
		func(ctx context.Context, ep string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if ep == "" {
		t.Fatal("no winner")
	}
	if hs.Launched.Load() != 0 {
		t.Fatalf("launched %d hedges for a fast primary, want 0", hs.Launched.Load())
	}
	if got := reg.Snapshot().Counters["resilience_hedges_total"]; got != 0 {
		t.Fatalf("resilience_hedges_total = %d, want 0", got)
	}
}

// TestDoHedgedLoserBreakerNeutral: losing the race is not evidence of
// endpoint failure — many straight losses must leave the slow endpoint's
// breaker closed.
func TestDoHedgedLoserBreakerNeutral(t *testing.T) {
	p := NewPool([]string{"slow", "fast"}, WithObserver(obs.NewRegistry()))
	for i := 0; i < 20; i++ {
		_, err := p.DoHedged(context.Background(), nil, &HedgePolicy{Delay: 5 * time.Millisecond},
			slowFastFns(5*time.Second, nil))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if st := p.BreakerFor("slow").State(); st != StateClosed {
		t.Fatalf("slow endpoint breaker = %v after 20 lost races, want closed", st)
	}
}

// TestDoHedgedNoGoroutineLeak: every attempt goroutine is awaited before
// DoHedged returns, so repeated hedged calls leave the goroutine count
// where it started.
func TestDoHedgedNoGoroutineLeak(t *testing.T) {
	p := NewPool([]string{"slow", "fast"}, WithObserver(obs.NewRegistry()))
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, err := p.DoHedged(context.Background(), nil, &HedgePolicy{Delay: time.Millisecond},
			slowFastFns(time.Minute, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain: give any stray goroutine a moment to exit before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after 50 hedged calls", before, runtime.NumGoroutine())
}

// TestDoHedgedSingleEndpoint: with one endpoint there is nobody to hedge
// to; the timer path must not wedge the call or poison the breaker.
func TestDoHedgedSingleEndpoint(t *testing.T) {
	p := NewPool([]string{"only"}, WithObserver(obs.NewRegistry()))
	ep, err := p.DoHedged(context.Background(), nil, &HedgePolicy{Delay: time.Millisecond},
		func(ctx context.Context, ep string) error {
			time.Sleep(20 * time.Millisecond)
			return nil
		})
	if err != nil || ep != "only" {
		t.Fatalf("DoHedged = %q, %v", ep, err)
	}
	if st := p.BreakerFor("only").State(); st != StateClosed {
		t.Fatalf("breaker = %v, want closed", st)
	}
}

// testFault is a minimal SOAP-fault-shaped error for classification.
type testFault struct{ code string }

func (f *testFault) Error() string     { return f.code }
func (f *testFault) FaultCode() string { return f.code }

// TestDoHedgedRetriesAcrossRounds: when a round fails retryably, the
// outer retry loop moves to another round like Do does.
func TestDoHedgedRetriesAcrossRounds(t *testing.T) {
	p := NewPool([]string{"a", "b"}, WithObserver(obs.NewRegistry()))
	var calls atomic.Int64
	ep, err := p.DoHedged(context.Background(), &Policy{MaxAttempts: 3, BackoffBase: time.Millisecond},
		&HedgePolicy{Delay: 500 * time.Millisecond},
		func(ctx context.Context, ep string) error {
			if calls.Add(1) < 3 {
				return &testFault{code: "soap:Server"}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("DoHedged after retries: %v (endpoint %q)", err, ep)
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d calls, want 3", calls.Load())
	}
}

// TestDoHedgedPermanentErrorStops: a permanent (caller) fault must not
// burn retries or hedges.
func TestDoHedgedPermanentErrorStops(t *testing.T) {
	p := NewPool([]string{"a", "b"}, WithObserver(obs.NewRegistry()))
	var calls atomic.Int64
	_, err := p.DoHedged(context.Background(), &Policy{MaxAttempts: 5, BackoffBase: time.Millisecond},
		&HedgePolicy{Delay: 500 * time.Millisecond},
		func(ctx context.Context, ep string) error {
			calls.Add(1)
			return &testFault{code: "soap:Client"}
		})
	if err == nil {
		t.Fatal("permanent fault reported success")
	}
	if calls.Load() != 1 {
		t.Fatalf("made %d calls for a permanent fault, want 1", calls.Load())
	}
}
