package resilience

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// SourceFunc lists the current endpoints of an equivalent-service set —
// typically a closure over a registry inquiry (see
// registry.Client.EndpointSource). It is a plain function type so the
// registry package can feed pools without importing this one.
type SourceFunc func(ctx context.Context) ([]string, error)

// Pool selects healthy endpoints for remote invocation. Selection is
// round-robin over the endpoints whose circuit breaker admits traffic;
// tripped endpoints are ejected from the rotation until their cooldown
// elapses. With a source attached, the pool refreshes its endpoint list
// from the registry — the paper's UDDI failover step — so newly
// published equivalent services join the rotation and dead ones leave.
type Pool struct {
	breakers     *BreakerSet
	observer     *obs.Registry
	source       SourceFunc
	refreshEvery time.Duration
	label        string

	// latEWMAns smooths successful call latency (see observeLatency);
	// DoHedged derives its backup-launch delay from it.
	latEWMAns atomic.Int64

	mu          sync.Mutex
	endpoints   []string
	next        int
	lastRefresh time.Time
	refreshing  bool
}

// PoolOption configures a Pool.
type PoolOption func(*Pool)

// WithSource attaches an endpoint source consulted by Refresh.
func WithSource(src SourceFunc) PoolOption {
	return func(p *Pool) { p.source = src }
}

// WithRefreshInterval makes MaybeRefresh consult the source when the
// last refresh is older than d (0 disables periodic refresh).
func WithRefreshInterval(d time.Duration) PoolOption {
	return func(p *Pool) { p.refreshEvery = d }
}

// WithBreakerConfig tunes the per-endpoint breakers.
func WithBreakerConfig(cfg BreakerConfig) PoolOption {
	return func(p *Pool) { p.breakers = NewBreakerSet(cfg, p.observer) }
}

// WithObserver directs the pool's (and its breakers') metrics to reg
// instead of obs.Default. Order matters: pass it before
// WithBreakerConfig.
func WithObserver(reg *obs.Registry) PoolOption {
	return func(p *Pool) {
		p.observer = reg
		p.breakers = NewBreakerSet(p.breakers.cfg, reg)
	}
}

// NewPool returns a pool seeded with endpoints (which may be empty when
// a source is attached: the first refresh fills it).
func NewPool(endpoints []string, opts ...PoolOption) *Pool {
	p := &Pool{observer: obs.Default}
	p.breakers = NewBreakerSet(BreakerConfig{}, p.observer)
	for _, o := range opts {
		o(p)
	}
	p.endpoints = dedup(endpoints)
	p.observer.Gauge("resilience_pool_size").Set(int64(len(p.endpoints)))
	return p
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, ep := range in {
		if ep == "" || seen[ep] {
			continue
		}
		seen[ep] = true
		out = append(out, ep)
	}
	return out
}

// Endpoints returns the current rotation (healthy or not).
func (p *Pool) Endpoints() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.endpoints...)
}

// BreakerFor exposes an endpoint's breaker (for state inspection).
func (p *Pool) BreakerFor(endpoint string) *Breaker { return p.breakers.For(endpoint) }

// Pick returns the next endpoint whose breaker admits traffic,
// preferring endpoints not in skip — the per-job "don't hand the retry
// straight back to the endpoint that just failed" rule. A skipped
// endpoint is still returned when it is the only healthy one. Every
// successful Pick must be followed by a Record for that endpoint.
func (p *Pool) Pick(skip ...string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.endpoints) == 0 {
		return "", fmt.Errorf("pool has no endpoints: %w", ErrNoHealthyEndpoint)
	}
	skipped := func(ep string) bool {
		for _, s := range skip {
			if s == ep {
				return true
			}
		}
		return false
	}
	for _, wantSkipped := range []bool{false, true} {
		n := len(p.endpoints)
		for i := 0; i < n; i++ {
			ep := p.endpoints[(p.next+i)%n]
			if skipped(ep) != wantSkipped {
				continue
			}
			if p.breakers.For(ep).Allow() {
				p.next = (p.next + i + 1) % n
				return ep, nil
			}
		}
	}
	return "", fmt.Errorf("%d endpoint(s) tripped or skipped: %w", len(p.endpoints), ErrNoHealthyEndpoint)
}

// Record feeds a call outcome into the endpoint's breaker and exports
// the rotation's health. It must be called exactly once per Pick.
func (p *Pool) Record(endpoint string, err error) {
	br := p.breakers.For(endpoint)
	before := br.State()
	br.Record(ClassifyErr(err))
	after := br.State()
	if before != StateOpen && after == StateOpen {
		p.observer.Counter("resilience_endpoint_ejections_total", "endpoint="+endpoint).Inc()
		resLog.Warn(nil, "endpoint_ejected", "endpoint", endpoint)
	}
	p.exportHealth()
}

func (p *Pool) exportHealth() {
	p.mu.Lock()
	healthy := 0
	for _, ep := range p.endpoints {
		if p.breakers.For(ep).State() != StateOpen {
			healthy++
		}
	}
	n := len(p.endpoints)
	p.mu.Unlock()
	p.observer.Gauge("resilience_pool_size").Set(int64(n))
	p.observer.Gauge("resilience_pool_healthy").Set(int64(healthy))
}

// Refresh replaces the rotation with the source's current endpoint
// list, preserving breaker state for endpoints that stay. An error or
// an empty result leaves the rotation untouched: a registry outage must
// not empty a working pool.
func (p *Pool) Refresh(ctx context.Context) error {
	if p.source == nil {
		return nil
	}
	p.mu.Lock()
	if p.refreshing {
		p.mu.Unlock()
		return nil
	}
	p.refreshing = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.refreshing = false
		p.mu.Unlock()
	}()

	p.observer.Counter("resilience_pool_refreshes_total").Inc()
	eps, err := p.source(ctx)
	now := time.Now()
	if err != nil {
		p.observer.Counter("resilience_pool_refresh_errors_total").Inc()
		resLog.Warn(ctx, "pool_refresh", "err", err)
		p.mu.Lock()
		p.lastRefresh = now
		p.mu.Unlock()
		return err
	}
	eps = dedup(eps)
	if len(eps) == 0 {
		p.mu.Lock()
		p.lastRefresh = now
		p.mu.Unlock()
		return nil
	}
	keep := map[string]bool{}
	for _, ep := range eps {
		keep[ep] = true
	}
	p.mu.Lock()
	p.endpoints = eps
	p.next = p.next % len(eps)
	p.lastRefresh = now
	p.mu.Unlock()
	p.breakers.Prune(keep)
	p.exportHealth()
	return nil
}

// MaybeRefresh runs Refresh when the pool has never refreshed or the
// refresh interval has elapsed.
func (p *Pool) MaybeRefresh(ctx context.Context) {
	if p.source == nil {
		return
	}
	p.mu.Lock()
	stale := p.lastRefresh.IsZero() ||
		(p.refreshEvery > 0 && time.Since(p.lastRefresh) >= p.refreshEvery)
	p.mu.Unlock()
	if stale {
		_ = p.Refresh(ctx)
	}
}

// Do invokes fn against pool endpoints under the retry policy: each
// retryable failure is re-attempted on a different endpoint when one is
// available, with the policy's backoff between attempts. When every
// endpoint is tripped it refreshes from the source (once) so newly
// published equivalent services can rescue the call. It returns the
// endpoint of the final attempt.
func (p *Pool) Do(ctx context.Context, pol *Policy, fn func(ctx context.Context, endpoint string) error) (string, error) {
	attempts := pol.Attempts()
	var lastEp string
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if ctx.Err() != nil {
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return lastEp, lastErr
		}
		p.MaybeRefresh(ctx)
		var skip []string
		if lastEp != "" {
			skip = []string{lastEp}
		}
		ep, pickErr := p.Pick(skip...)
		if pickErr != nil {
			lastErr = pickErr
			// Re-pull the source on every failed pick, not just the first:
			// under replica churn a restarted server re-registers between
			// attempts, and a pool that only refreshed once stays blind to
			// it for the rest of the call.
			_ = p.Refresh(ctx)
		} else {
			began := time.Now()
			err := fn(ctx, ep)
			p.Record(ep, err)
			if err == nil {
				p.observeLatency(time.Since(began))
				return ep, nil
			}
			lastEp, lastErr = ep, err
			if cls := Classify(ctx, err); cls != Retryable && cls != Busy {
				return ep, err
			}
		}
		if attempt < attempts {
			p.observer.Counter("resilience_retries_total").Inc()
			if err := pol.SleepHint(ctx, attempt, RetryAfter(lastErr)); err != nil {
				return lastEp, lastErr
			}
		}
	}
	return lastEp, lastErr
}
