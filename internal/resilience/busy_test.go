package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// busyErr mimics a ServerBusy soap fault: classified Busy, carrying a
// Retry-After hint. (The real soap.Fault cannot appear here — soap
// imports resilience — so the interfaces are exercised through a stub.)
type busyErr struct{ hint time.Duration }

func (e *busyErr) Error() string                 { return "ServerBusy" }
func (e *busyErr) FaultCode() string             { return BusyFaultCode }
func (e *busyErr) RetryAfterHint() time.Duration { return e.hint }

func TestClassifyBusy(t *testing.T) {
	if got := ClassifyErr(&busyErr{}); got != Busy {
		t.Fatalf("ClassifyErr(ServerBusy) = %v, want Busy", got)
	}
	if got := ClassifyErr(fmt.Errorf("wrapped: %w", &busyErr{})); got != Busy {
		t.Fatalf("wrapped ServerBusy classified %v, want Busy", got)
	}
	if Busy.String() != "busy" {
		t.Fatalf("Busy.String() = %q", Busy.String())
	}
}

func TestRetryAfterExtraction(t *testing.T) {
	if got := RetryAfter(&busyErr{hint: 250 * time.Millisecond}); got != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v", got)
	}
	if got := RetryAfter(fmt.Errorf("wrap: %w", &busyErr{hint: time.Second})); got != time.Second {
		t.Fatalf("RetryAfter through wrapping = %v", got)
	}
	if got := RetryAfter(errors.New("plain")); got != 0 {
		t.Fatalf("RetryAfter(plain error) = %v, want 0", got)
	}
}

// TestBreakerBusyIsNeutral: shed requests must not open a breaker — a
// shedding server is alive and should stay in the rotation — and a busy
// answer to a half-open probe must release the probe slot without
// closing or re-opening the breaker.
func TestBreakerBusyIsNeutral(t *testing.T) {
	cfg := BreakerConfig{FailureThreshold: 2, ErrorRate: 0.5, Window: 4, Cooldown: time.Minute}
	b := NewBreaker("ep", cfg, obs.NewRegistry())

	for i := 0; i < 20; i++ {
		b.Record(Busy)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("breaker opened on Busy outcomes alone: %v", got)
	}
	// Busy outcomes must not feed the rolling error-rate window either:
	// one real failure after many sheds is 1 consecutive, not a trip.
	b.Record(Retryable)
	if got := b.State(); got != StateClosed {
		t.Fatalf("one failure after sheds tripped the breaker: %v", got)
	}

	// Trip it for real, then probe half-open with a Busy answer.
	b.Record(Retryable)
	if got := b.State(); got != StateOpen {
		t.Fatalf("two consecutive failures should open: %v", got)
	}
	b.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	if !b.Allow() {
		t.Fatal("cooldown elapsed; breaker should admit a probe")
	}
	b.Record(Busy)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("busy probe moved breaker to %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("busy probe should release the probe slot for the next attempt")
	}
}

func TestSleepHintStretchesBackoff(t *testing.T) {
	p := &Policy{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}
	start := time.Now()
	if err := p.SleepHint(context.Background(), 1, 60*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("SleepHint returned after %v, hint was 60ms", elapsed)
	}
	// Without a hint the policy backoff (~1-2ms) applies.
	start = time.Now()
	if err := p.SleepHint(context.Background(), 1, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("hintless SleepHint took %v, want the small policy backoff", elapsed)
	}
}
