package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

type serverFault struct{}

func (serverFault) Error() string     { return "soap fault soap:Server" }
func (serverFault) FaultCode() string { return "soap:Server" }

func TestPoolRoundRobinAndSkip(t *testing.T) {
	p := NewPool([]string{"a", "b", "c"}, WithObserver(obs.NewRegistry()))
	var got []string
	for i := 0; i < 3; i++ {
		ep, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		p.Record(ep, nil)
		got = append(got, ep)
	}
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("rotation = %v, want [a b c]", got)
	}
	// The retry after a failure on "a" must not land on "a".
	ep, err := p.Pick("a")
	if err != nil {
		t.Fatal(err)
	}
	if ep == "a" {
		t.Fatal("pick returned the skipped endpoint while others were healthy")
	}
	p.Record(ep, nil)
}

func TestPoolSkippedEndpointIsLastResort(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool([]string{"a", "b"},
		WithObserver(reg),
		WithBreakerConfig(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute}))
	// Trip b; only a remains, and a is skipped — it must still be offered.
	p.Record("b", serverFault{})
	ep, err := p.Pick("a")
	if err != nil {
		t.Fatal(err)
	}
	if ep != "a" {
		t.Fatalf("pick = %q, want the skipped-but-only-healthy %q", ep, "a")
	}
	p.Record(ep, nil)
}

func TestPoolEjectsTrippedEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool([]string{"bad", "good"},
		WithObserver(reg),
		WithBreakerConfig(BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}))
	p.Record("bad", serverFault{})
	p.Record("bad", serverFault{})
	for i := 0; i < 4; i++ {
		ep, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if ep != "good" {
			t.Fatalf("pick %d = %q, want the healthy endpoint", i, ep)
		}
		p.Record(ep, nil)
	}
	if got := reg.Counter("resilience_endpoint_ejections_total", "endpoint=bad").Value(); got != 1 {
		t.Fatalf("ejections counter = %d, want 1", got)
	}
	if got := reg.Gauge("resilience_pool_healthy").Value(); got != 1 {
		t.Fatalf("healthy gauge = %d, want 1", got)
	}
	// All tripped: Pick reports a retryable no-endpoint error.
	p.Record("good", serverFault{})
	p.Record("good", serverFault{})
	if _, err := p.Pick(); !errors.Is(err, ErrNoHealthyEndpoint) {
		t.Fatalf("all-tripped pick error = %v, want ErrNoHealthyEndpoint", err)
	}
}

func TestPoolRefreshFromSource(t *testing.T) {
	var mu sync.Mutex
	eps := []string{"a", "b"}
	var calls int
	src := func(ctx context.Context) ([]string, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return append([]string(nil), eps...), nil
	}
	p := NewPool(nil, WithObserver(obs.NewRegistry()), WithSource(src))
	if err := p.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Endpoints(); fmt.Sprint(got) != "[a b]" {
		t.Fatalf("endpoints = %v, want [a b]", got)
	}
	// A newly published equivalent service joins; a dead one leaves.
	mu.Lock()
	eps = []string{"b", "c"}
	mu.Unlock()
	if err := p.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Endpoints(); fmt.Sprint(got) != "[b c]" {
		t.Fatalf("endpoints after refresh = %v, want [b c]", got)
	}
	// Registry outage or an empty inquiry must not wipe a working pool.
	mu.Lock()
	eps = nil
	mu.Unlock()
	if err := p.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Endpoints(); fmt.Sprint(got) != "[b c]" {
		t.Fatalf("empty refresh emptied the pool: %v", got)
	}
	mu.Lock()
	if calls != 3 {
		t.Fatalf("source consulted %d times, want 3", calls)
	}
	mu.Unlock()
}

func TestPoolDoFailsOverToHealthyEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool([]string{"bad", "good"},
		WithObserver(reg),
		WithBreakerConfig(BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}))
	pol := &Policy{MaxAttempts: 3, BackoffBase: time.Millisecond}
	var tried []string
	ep, err := p.Do(context.Background(), pol, func(ctx context.Context, endpoint string) error {
		tried = append(tried, endpoint)
		if endpoint == "bad" {
			return serverFault{}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ep != "good" {
		t.Fatalf("Do finished on %q, want good", ep)
	}
	if len(tried) != 2 || tried[0] != "bad" || tried[1] != "good" {
		t.Fatalf("attempt sequence = %v, want [bad good]", tried)
	}
	if got := reg.Counter("resilience_retries_total").Value(); got != 1 {
		t.Fatalf("retries counter = %d, want 1", got)
	}
}

func TestPoolDoStopsOnPermanentFault(t *testing.T) {
	p := NewPool([]string{"a", "b"}, WithObserver(obs.NewRegistry()))
	calls := 0
	clientFault := &fault{"soap:Client"}
	_, err := p.Do(context.Background(), &Policy{MaxAttempts: 4, BackoffBase: time.Millisecond},
		func(ctx context.Context, endpoint string) error {
			calls++
			return clientFault
		})
	if !errors.Is(err, error(clientFault)) {
		t.Fatalf("err = %v, want the client fault", err)
	}
	if calls != 1 {
		t.Fatalf("permanent fault attempted %d times, want 1", calls)
	}
}

func TestPoolDoRefreshesWhenAllTripped(t *testing.T) {
	src := func(ctx context.Context) ([]string, error) { return []string{"fresh"}, nil }
	p := NewPool([]string{"dead"},
		WithObserver(obs.NewRegistry()),
		WithSource(src),
		WithBreakerConfig(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute}))
	// Use up the first refresh so the pool starts from just {dead}… the
	// source already lists only "fresh", so the first MaybeRefresh swaps
	// it in. To exercise the all-tripped path, trip "fresh" too and
	// point the source at a replacement.
	p.Record("dead", serverFault{})
	ep, err := p.Do(context.Background(), &Policy{MaxAttempts: 2, BackoffBase: time.Millisecond},
		func(ctx context.Context, endpoint string) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if ep != "fresh" {
		t.Fatalf("Do used %q, want the registry-refreshed endpoint", ep)
	}
}
