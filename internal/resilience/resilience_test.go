package resilience

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"testing"
	"time"
)

// fault mimics a SOAP fault through the FaultCode contract without
// importing the soap package.
type fault struct{ code string }

func (f *fault) Error() string     { return "soap fault " + f.code }
func (f *fault) FaultCode() string { return f.code }

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestClassifyErr(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Success},
		{"cancelled", context.Canceled, Aborted},
		{"wrapped cancelled", fmt.Errorf("call: %w", context.Canceled), Aborted},
		{"attempt deadline", context.DeadlineExceeded, Retryable},
		{"server fault", &fault{"soap:Server"}, Retryable},
		{"client fault", &fault{"soap:Client"}, Permanent},
		{"wrapped client fault", fmt.Errorf("job: %w", &fault{"soap:Client"}), Permanent},
		{"net error", timeoutErr{}, Retryable},
		{"url error", &url.Error{Op: "Post", URL: "http://x", Err: errors.New("refused")}, Retryable},
		{"circuit open", fmt.Errorf("ep: %w", ErrOpen), Retryable},
		{"no endpoints", fmt.Errorf("pool: %w", ErrNoHealthyEndpoint), Retryable},
		{"plain error", errors.New("boom"), Permanent},
	}
	for _, tc := range cases {
		if got := ClassifyErr(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyErr = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// Once the caller's context is dead every outcome is Aborted: no retry
// can run after the caller's deadline.
func TestClassifyAbortsOnDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := Classify(ctx, &fault{"soap:Server"}); got != Aborted {
		t.Fatalf("dead context: Classify = %v, want Aborted", got)
	}
	if got := Classify(context.Background(), &fault{"soap:Server"}); got != Retryable {
		t.Fatalf("live context: Classify = %v, want Retryable", got)
	}
}

func TestPolicyBackoff(t *testing.T) {
	p := &Policy{BackoffBase: 100 * time.Millisecond, BackoffMax: 400 * time.Millisecond, Seed: 7}
	for attempt, nominal := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 400 * time.Millisecond, // capped
	} {
		d := p.Backoff(attempt)
		if d < nominal/2 || d >= nominal+nominal/2 {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d, nominal/2, nominal+nominal/2)
		}
	}
}

// The jitter sequence is deterministic for a given seed, so failure
// reproductions replay the same schedule.
func TestPolicyBackoffDeterministic(t *testing.T) {
	seq := func() []time.Duration {
		p := &Policy{BackoffBase: 10 * time.Millisecond, Seed: 42}
		var out []time.Duration
		for i := 1; i <= 5; i++ {
			out = append(out, p.Backoff(i))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff sequence not deterministic: %v vs %v", a, b)
		}
	}
}

func TestPolicyDefaultsAndNil(t *testing.T) {
	var p *Policy
	if got := p.Attempts(); got != 3 {
		t.Fatalf("nil policy attempts = %d, want 3", got)
	}
	if d := p.Backoff(1); d <= 0 {
		t.Fatalf("nil policy backoff = %v", d)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on dead ctx = %v, want Canceled", err)
	}
}
