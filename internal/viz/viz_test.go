package viz

import (
	"bytes"
	"image/png"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/datagen"
)

func trainedTree(t *testing.T) *classify.TreeNode {
	t.Helper()
	j := classify.NewJ48()
	if err := j.Train(datagen.BreastCancer()); err != nil {
		t.Fatal(err)
	}
	return j.Tree()
}

func TestTreeDOT(t *testing.T) {
	dot := TreeDOT(trainedTree(t))
	for _, want := range []string{"digraph J48", "node-caps", "recurrence-events", "->", "label=\"= yes\""} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT lacks %q:\n%s", want, dot)
		}
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Fatal("unbalanced braces in DOT")
	}
}

func TestTreeASCII(t *testing.T) {
	out := TreeASCII(trainedTree(t))
	if !strings.Contains(out, "node-caps = yes") || !strings.Contains(out, "-> ") {
		t.Fatalf("ASCII tree:\n%s", out)
	}
}

func TestCobwebDOT(t *testing.T) {
	cw := &cluster.Cobweb{Acuity: 1, Cutoff: 0.0028}
	if err := cw.Build(datagen.Weather()); err != nil {
		t.Fatal(err)
	}
	dot := CobwebDOT(cw.Root())
	if !strings.Contains(dot, "digraph Cobweb") || !strings.Contains(dot, "c0") {
		t.Fatalf("cobweb DOT:\n%s", dot)
	}
}

func TestDendrogram(t *testing.T) {
	h := &cluster.Hierarchical{K: 2, Linkage: cluster.AverageLink}
	d := datagen.GaussianClusters(2, 20, 2, 8, 3)
	if err := h.Build(d); err != nil {
		t.Fatal(err)
	}
	out := Dendrogram(h.Merges(), 20)
	if !strings.Contains(out, "merge@") || !strings.Contains(out, "leaf") {
		t.Fatalf("dendrogram:\n%s", out)
	}
	if got := Dendrogram(nil, 0); !strings.Contains(got, "no merges") {
		t.Fatalf("empty dendrogram = %q", got)
	}
}

func TestClusterSummary(t *testing.T) {
	out := ClusterSummary([]int{0, 0, 1, -1}, 2)
	if !strings.Contains(out, "cluster 0") || !strings.Contains(out, "noise/unassigned: 1") {
		t.Fatalf("summary:\n%s", out)
	}
}

func TestAsciiPlot(t *testing.T) {
	s := Series{Name: "wave", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 0, -1}}
	out := AsciiPlot(40, 10, s)
	if !strings.Contains(out, "*") || !strings.Contains(out, "wave") {
		t.Fatalf("plot:\n%s", out)
	}
	if got := AsciiPlot(40, 10); !strings.Contains(got, "empty") {
		t.Fatalf("empty plot = %q", got)
	}
	// Multiple series get distinct glyphs.
	s2 := Series{Name: "other", X: []float64{0, 3}, Y: []float64{1, 1}}
	multi := AsciiPlot(40, 10, s, s2)
	if !strings.Contains(multi, "+ = other") {
		t.Fatalf("legend missing:\n%s", multi)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]string{"a", "bb"}, []float64{2, 4}, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("histogram lines: %v", lines)
	}
	if strings.Count(lines[1], "#") != 20 {
		t.Fatalf("max bar should fill width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 10 {
		t.Fatalf("half bar: %q", lines[0])
	}
}

func decodePNG(t *testing.T, b []byte) (w, h int) {
	t.Helper()
	img, err := png.Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("not a PNG: %v", err)
	}
	return img.Bounds().Dx(), img.Bounds().Dy()
}

func TestScatterPNG(t *testing.T) {
	s := Series{X: []float64{1, 2, 3}, Y: []float64{3, 1, 2}}
	b, err := ScatterPNG(320, 240, s)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := decodePNG(t, b); w != 320 || h != 240 {
		t.Fatalf("dimensions %dx%d", w, h)
	}
}

func TestLinePNG(t *testing.T) {
	s := Series{X: []float64{0, 1, 2}, Y: []float64{0, 5, 0}}
	b, err := LinePNG(200, 150, s)
	if err != nil {
		t.Fatal(err)
	}
	decodePNG(t, b)
}

func TestPlot3DPNG(t *testing.T) {
	var pts []Point3D
	for i := 0; i < 100; i++ {
		x, y := float64(i%10), float64(i/10)
		pts = append(pts, Point3D{X: x, Y: y, Z: x * y})
	}
	b, err := Plot3DPNG(400, 300, pts)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := decodePNG(t, b); w != 400 || h != 300 {
		t.Fatalf("dimensions %dx%d", w, h)
	}
	if _, err := Plot3DPNG(100, 100, nil); err == nil {
		t.Fatal("empty 3D plot accepted")
	}
}

func TestPNGNotBlank(t *testing.T) {
	// The rendered scatter must contain non-white pixels besides the axes.
	s := Series{X: []float64{1, 2, 3, 4}, Y: []float64{1, 4, 9, 16}}
	b, err := ScatterPNG(200, 200, s)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	coloured := 0
	bounds := img.Bounds()
	for y := bounds.Min.Y; y < bounds.Max.Y; y++ {
		for x := bounds.Min.X; x < bounds.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			if r != g || g != bl { // a palette colour, not greyscale
				coloured++
			}
		}
	}
	if coloured < 4 {
		t.Fatalf("only %d coloured pixels", coloured)
	}
}
