package viz

import (
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/cluster"
)

// TreeDOT renders a trained decision tree in Graphviz DOT, the "graphical
// representation of the decision tree" of the classify-graph operation
// (§4.1, Figure 4).
func TreeDOT(root *classify.TreeNode) string {
	var b strings.Builder
	b.WriteString("digraph J48 {\n  node [shape=box, fontname=\"Helvetica\"];\n")
	id := 0
	var walk func(n *classify.TreeNode) int
	walk = func(n *classify.TreeNode) int {
		my := id
		id++
		if n.Attr < 0 {
			total := 0.0
			for _, w := range n.Dist {
				total += w
			}
			fmt.Fprintf(&b, "  n%d [label=\"%s (%.1f)\", style=filled, fillcolor=lightgrey];\n",
				my, escape(n.ClassName), total)
			return my
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", my, escape(n.AttrName))
		for i, c := range n.Children {
			ci := walk(c)
			label := ""
			if i < len(n.Labels) {
				label = n.Labels[i]
			}
			if !n.Numeric {
				label = "= " + label
			}
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%s\"];\n", my, ci, escape(label))
		}
		return my
	}
	if root != nil {
		walk(root)
	}
	b.WriteString("}\n")
	return b.String()
}

// TreeASCII renders a decision tree as an indented outline (the TreeViewer
// textual mode of the case study).
func TreeASCII(root *classify.TreeNode) string {
	var b strings.Builder
	var walk func(n *classify.TreeNode, prefix string)
	walk = func(n *classify.TreeNode, prefix string) {
		if n.Attr < 0 {
			fmt.Fprintf(&b, "%s-> %s\n", prefix, n.ClassName)
			return
		}
		for i, c := range n.Children {
			label := ""
			if i < len(n.Labels) {
				label = n.Labels[i]
			}
			if !n.Numeric {
				label = "= " + label
			}
			fmt.Fprintf(&b, "%s%s %s\n", prefix, n.AttrName, label)
			walk(c, prefix+"    ")
		}
	}
	if root != nil {
		walk(root, "")
	}
	return b.String()
}

// CobwebDOT renders a COBWEB concept hierarchy in Graphviz DOT — the
// getCobwebGraph payload for the tree plotter (§4.1).
func CobwebDOT(root *cluster.ConceptNode) string {
	var b strings.Builder
	b.WriteString("digraph Cobweb {\n  node [shape=ellipse, fontname=\"Helvetica\"];\n")
	var walk func(n *cluster.ConceptNode)
	walk = func(n *cluster.ConceptNode) {
		shape := ""
		if len(n.Children) == 0 {
			shape = ", style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(&b, "  c%d [label=\"C%d\\nn=%.0f\"%s];\n", n.ID, n.ID, n.Count, shape)
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  c%d -> c%d;\n", n.ID, c.ID)
			walk(c)
		}
	}
	if root != nil {
		walk(root)
	}
	b.WriteString("}\n")
	return b.String()
}

// Dendrogram renders hierarchical-clustering merges as an indented outline
// with merge distances (the Cluster Visualizer for agglomerative output).
func Dendrogram(merges []cluster.Merge, n int) string {
	if len(merges) == 0 {
		return "(no merges)\n"
	}
	children := map[int][2]int{}
	dist := map[int]float64{}
	for s, m := range merges {
		id := n + s
		children[id] = [2]int{m.Left, m.Right}
		dist[id] = m.Distance
	}
	rootID := n + len(merges) - 1
	var b strings.Builder
	var walk func(id int, depth int)
	walk = func(id, depth int) {
		pad := strings.Repeat("  ", depth)
		if ch, ok := children[id]; ok {
			fmt.Fprintf(&b, "%smerge@%.3f\n", pad, dist[id])
			walk(ch[0], depth+1)
			walk(ch[1], depth+1)
			return
		}
		fmt.Fprintf(&b, "%sleaf %d\n", pad, id)
	}
	walk(rootID, 0)
	return b.String()
}

// ClusterSummary renders per-cluster sizes as an ASCII histogram, the
// textual Cluster Visualizer output.
func ClusterSummary(assign []int, k int) string {
	counts := make([]float64, k)
	noise := 0
	for _, a := range assign {
		if a >= 0 && a < k {
			counts[a]++
		} else {
			noise++
		}
	}
	labels := make([]string, k)
	for i := range labels {
		labels[i] = fmt.Sprintf("cluster %d", i)
	}
	s := Histogram(labels, counts, 40)
	if noise > 0 {
		s += fmt.Sprintf("noise/unassigned: %d\n", noise)
	}
	return s
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
