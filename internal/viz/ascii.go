// Package viz implements the visualisation substrate of the toolkit: the
// decision-tree and cluster visualisers of §4.3, an ASCII plotter standing
// in for GNUPlot's dumb terminal, and PNG renderers standing in for the
// Mathematica plot3D Web Service of §4.2.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named sequence of (X, Y) points.
type Series struct {
	Name string
	X, Y []float64
}

// AsciiPlot renders series as a width×height character plot in the style of
// GNUPlot's "dumb" terminal, with axis ranges annotated. Each series uses
// its own glyph (*, +, o, x, ...).
func AsciiPlot(width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX {
		return "(empty plot)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.4g +", maxY)
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	for _, row := range grid {
		b.WriteString(strings.Repeat(" ", 11))
		b.WriteByte('|')
		b.Write(row)
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%10.4g +%s+\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%12s%-10.4g%*s%10.4g\n", "", minX, width-18, "", maxX)
	for si, s := range series {
		if s.Name != "" {
			fmt.Fprintf(&b, "  %c = %s\n", glyphs[si%len(glyphs)], s.Name)
		}
	}
	return b.String()
}

// Histogram renders counts as a horizontal ASCII bar chart with labels.
func Histogram(labels []string, counts []float64, width int) string {
	if width < 10 {
		width = 40
	}
	max := 0.0
	labW := 0
	for i, c := range counts {
		if c > max {
			max = c
		}
		if i < len(labels) && len(labels[i]) > labW {
			labW = len(labels[i])
		}
	}
	var b strings.Builder
	for i, c := range counts {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		bar := 0
		if max > 0 {
			bar = int(c / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %g\n", labW, label, strings.Repeat("#", bar), c)
	}
	return b.String()
}
