package viz

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"sort"
)

// palette holds the series colours of the PNG renderers.
var palette = []color.RGBA{
	{31, 119, 180, 255},
	{255, 127, 14, 255},
	{44, 160, 44, 255},
	{214, 39, 40, 255},
	{148, 103, 189, 255},
	{140, 86, 75, 255},
	{227, 119, 194, 255},
	{127, 127, 127, 255},
}

// canvas wraps an RGBA image with data-space projection.
type canvas struct {
	img                    *image.RGBA
	minX, maxX, minY, maxY float64
	left, top, w, h        int
}

func newCanvas(width, height int, minX, maxX, minY, maxY float64) *canvas {
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			img.SetRGBA(x, y, color.RGBA{255, 255, 255, 255})
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	c := &canvas{img: img, minX: minX, maxX: maxX, minY: minY, maxY: maxY,
		left: 40, top: 20, w: width - 60, h: height - 50}
	// Axes.
	axis := color.RGBA{0, 0, 0, 255}
	for x := c.left; x <= c.left+c.w; x++ {
		img.SetRGBA(x, c.top+c.h, axis)
	}
	for y := c.top; y <= c.top+c.h; y++ {
		img.SetRGBA(c.left, y, axis)
	}
	return c
}

func (c *canvas) px(x, y float64) (int, int) {
	cx := c.left + int((x-c.minX)/(c.maxX-c.minX)*float64(c.w))
	cy := c.top + c.h - int((y-c.minY)/(c.maxY-c.minY)*float64(c.h))
	return cx, cy
}

func (c *canvas) dot(x, y float64, col color.RGBA, r int) {
	cx, cy := c.px(x, y)
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				c.set(cx+dx, cy+dy, col)
			}
		}
	}
}

func (c *canvas) set(x, y int, col color.RGBA) {
	if image.Pt(x, y).In(c.img.Rect) {
		c.img.SetRGBA(x, y, col)
	}
}

// line draws a data-space segment with Bresenham's algorithm.
func (c *canvas) line(x0, y0, x1, y1 float64, col color.RGBA) {
	ax, ay := c.px(x0, y0)
	bx, by := c.px(x1, y1)
	dx, dy := abs(bx-ax), -abs(by-ay)
	sx, sy := 1, 1
	if ax >= bx {
		sx = -1
	}
	if ay >= by {
		sy = -1
	}
	err := dx + dy
	for {
		c.set(ax, ay, col)
		if ax == bx && ay == by {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			ax += sx
		}
		if e2 <= dx {
			err += dx
			ay += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// encode renders the canvas to PNG bytes.
func (c *canvas) encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := png.Encode(&buf, c.img); err != nil {
		return nil, fmt.Errorf("viz: %w", err)
	}
	return buf.Bytes(), nil
}

func seriesBounds(series []Series) (minX, maxX, minY, maxY float64) {
	minX, maxX = math.Inf(1), math.Inf(-1)
	minY, maxY = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	return
}

// ScatterPNG renders series as a scatter plot and returns PNG bytes — the
// Image Plotter tool of §4.3.
func ScatterPNG(width, height int, series ...Series) ([]byte, error) {
	minX, maxX, minY, maxY := seriesBounds(series)
	c := newCanvas(width, height, minX, maxX, minY, maxY)
	for si, s := range series {
		col := palette[si%len(palette)]
		for i := range s.X {
			if !math.IsNaN(s.X[i]) && !math.IsNaN(s.Y[i]) {
				c.dot(s.X[i], s.Y[i], col, 2)
			}
		}
	}
	return c.encode()
}

// LinePNG renders series as connected lines and returns PNG bytes.
func LinePNG(width, height int, series ...Series) ([]byte, error) {
	minX, maxX, minY, maxY := seriesBounds(series)
	c := newCanvas(width, height, minX, maxX, minY, maxY)
	for si, s := range series {
		col := palette[si%len(palette)]
		for i := 1; i < len(s.X); i++ {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) ||
				math.IsNaN(s.X[i-1]) || math.IsNaN(s.Y[i-1]) {
				continue
			}
			c.line(s.X[i-1], s.Y[i-1], s.X[i], s.Y[i], col)
		}
	}
	return c.encode()
}

// Point3D is one (X, Y, Z) sample for Plot3DPNG.
type Point3D struct{ X, Y, Z float64 }

// Plot3DPNG renders 3-D points via an isometric projection with Z-dependent
// colouring, standing in for the Mathematica plot3D operation of §4.2: CSV
// points in, PNG image out.
func Plot3DPNG(width, height int, pts []Point3D) ([]byte, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("viz: no points to plot")
	}
	// Normalise each axis to [0,1].
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	minZ, maxZ := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		minZ, maxZ = math.Min(minZ, p.Z), math.Max(maxZ, p.Z)
	}
	norm := func(v, lo, hi float64) float64 {
		if hi == lo {
			return 0.5
		}
		return (v - lo) / (hi - lo)
	}
	// Isometric projection: u = x - y (rotated 45°), v = (x + y)/2 - z.
	type proj struct {
		u, v, z float64
	}
	prj := make([]proj, len(pts))
	for i, p := range pts {
		x := norm(p.X, minX, maxX)
		y := norm(p.Y, minY, maxY)
		z := norm(p.Z, minZ, maxZ)
		prj[i] = proj{u: x - y, v: (x+y)/2 + z, z: z}
	}
	// Painter's order: far points (small v) first.
	order := make([]int, len(prj))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return prj[order[a]].v > prj[order[b]].v })
	minU, maxU := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, p := range prj {
		minU, maxU = math.Min(minU, p.u), math.Max(maxU, p.u)
		minV, maxV = math.Min(minV, p.v), math.Max(maxV, p.v)
	}
	c := newCanvas(width, height, minU, maxU, minV, maxV)
	for _, i := range order {
		p := prj[i]
		// Colour ramp blue (low z) -> red (high z).
		col := color.RGBA{uint8(40 + 200*p.z), 60, uint8(240 - 200*p.z), 255}
		c.dot(p.u, p.v, col, 2)
	}
	return c.encode()
}
