// Package parallel provides the bounded, context-cancellable worker
// helpers behind every compute kernel in the toolkit (cross-validation
// folds, ensemble members, clustering assignment loops, neighbour and
// subset scans). The design constraint is determinism: work is
// partitioned into contiguous index blocks, results are written to
// index-addressed slots, and callers reduce them in index order, so a
// parallel kernel produces bit-identical output to its sequential form
// at any worker count. FlexDM (PAPERS.md) demonstrates the throughput
// case for parallel WEKA experiment execution; this package supplies
// the primitive the ROADMAP's "as fast as the hardware allows" goal
// needs without giving up reproducibility.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Workers normalises a parallelism request: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS), anything else is returned unchanged.
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// DeriveSeed mixes a base seed with a stream index into an independent
// seed (splitmix64 finaliser). Sequential seeds like base+i produce
// correlated rand streams and collide across members when base itself
// varies by one; the mix keeps per-member RNGs reproducible and
// independent of training order.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Stats reports how a kernel run spent its time: Wall is the elapsed
// time of the whole ForEachStats call, Busy the summed in-worker time.
// Utilisation approaches Workers×100% when the partition is balanced.
type Stats struct {
	Workers int
	Wall    time.Duration
	Busy    time.Duration
}

// Utilisation returns Busy as a percentage of Workers×Wall — 100 means
// every worker was busy for the whole wall-clock span.
func (s Stats) Utilisation() float64 {
	if s.Workers <= 0 || s.Wall <= 0 {
		return 0
	}
	return 100 * float64(s.Busy) / (float64(s.Workers) * float64(s.Wall))
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines, partitioning the index space into contiguous blocks (one
// per worker). It returns the error from the lowest index that failed,
// or ctx.Err() if the context was cancelled first. With workers <= 1
// (or nothing to parallelise) it runs inline on the calling goroutine,
// checking ctx between items — the sequential path allocates nothing.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := forEach(ctx, n, workers, fn, false)
	return err
}

// ForEachStats is ForEach plus worker-granularity timing for obs
// instrumentation.
func ForEachStats(ctx context.Context, n, workers int, fn func(i int) error) (Stats, error) {
	return forEach(ctx, n, workers, fn, true)
}

func forEach(ctx context.Context, n, workers int, fn func(i int) error, timed bool) (Stats, error) {
	if n <= 0 {
		return Stats{Workers: 1}, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		return sequential(ctx, n, fn, timed)
	}

	start := time.Now()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		busy time.Duration
		// firstErr is the error from the lowest failing index; errIdx
		// tracks that index so later failures don't shadow earlier ones.
		firstErr error
		errIdx   int
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
	}
	// Contiguous blocks: worker w gets [w*q + min(w,r), ...) — the same
	// partition at every run, so per-index work placement is stable.
	q, r := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		size := q
		if w < r {
			size++
		}
		hi := lo + size
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					record(i, err)
					break
				}
				if err := fn(i); err != nil {
					record(i, err)
					break
				}
			}
			if timed {
				d := time.Since(t0)
				mu.Lock()
				busy += d
				mu.Unlock()
			}
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	st := Stats{Workers: workers, Busy: busy}
	if timed {
		st.Wall = time.Since(start)
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	return st, firstErr
}

func sequential(ctx context.Context, n int, fn func(i int) error, timed bool) (Stats, error) {
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	st := Stats{Workers: 1}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		if err := fn(i); err != nil {
			return st, err
		}
	}
	if timed {
		st.Wall = time.Since(t0)
		st.Busy = st.Wall
	}
	return st, nil
}

// Observe records a kernel run in reg (obs.Default when nil): duration
// histogram, worker/utilisation gauges, and a run counter, all labelled
// kernel=<name>.
func Observe(reg *obs.Registry, kernel string, s Stats) {
	if reg == nil {
		reg = obs.Default
	}
	label := "kernel=" + kernel
	reg.Histogram("kernel_ms", label).Observe(float64(s.Wall) / float64(time.Millisecond))
	reg.Gauge("kernel_workers", label).Set(int64(s.Workers))
	reg.Gauge("kernel_utilisation_pct", label).Set(int64(s.Utilisation()))
	reg.Counter("kernel_runs_total", label).Inc()
}
