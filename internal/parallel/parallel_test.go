package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 57
		hits := make([]int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Run repeatedly: with racing workers the lowest failing index must
	// still win every time.
	for trial := 0; trial < 20; trial++ {
		err := ForEach(context.Background(), 64, 8, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 60:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errLow)
		}
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1000, 4, func(i int) error {
			if started.Add(1) == 1 {
				cancel()
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

func TestSequentialPathChecksContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := ForEach(ctx, 100, 1, func(i int) error {
		ran++
		if i == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if ran != 5 {
		t.Fatalf("ran %d items after cancel at index 4", ran)
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for i := 0; i < 64; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Fatal("DeriveSeed not deterministic")
	}
	// The base+i scheme collides across neighbouring bases; the mix must not.
	if DeriveSeed(1, 1) == DeriveSeed(2, 0) {
		t.Fatal("DeriveSeed(1,1) == DeriveSeed(2,0)")
	}
}

func TestForEachStatsAndObserve(t *testing.T) {
	st, err := ForEachStats(context.Background(), 32, 4, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Fatalf("Workers = %d", st.Workers)
	}
	if st.Wall <= 0 || st.Busy <= 0 {
		t.Fatalf("timings not recorded: %+v", st)
	}
	if u := st.Utilisation(); u <= 0 {
		t.Fatalf("Utilisation = %v", u)
	}
	reg := obs.NewRegistry()
	Observe(reg, "test", st)
	snap := reg.Snapshot()
	if snap.Counters[obs.Key("kernel_runs_total", "kernel=test")] != 1 {
		t.Fatalf("kernel_runs_total missing: %+v", snap.Counters)
	}
	if snap.Histograms[obs.Key("kernel_ms", "kernel=test")].Count != 1 {
		t.Fatal("kernel_ms histogram missing")
	}
	if snap.Gauges[obs.Key("kernel_workers", "kernel=test")] != 4 {
		t.Fatal("kernel_workers gauge missing")
	}
}

func TestForEachPartitionStable(t *testing.T) {
	// The block partition must assign each index to the same worker on
	// every run: record worker block bounds via the goroutine-local loop.
	assign := func() []int64 {
		out := make([]int64, 10)
		var block atomic.Int64
		_ = ForEach(context.Background(), 10, 3, func(i int) error {
			// Workers process contiguous ranges; tag each index with a
			// monotonically increasing per-call stamp to detect blocks.
			out[i] = block.Add(1)
			return nil
		})
		return out
	}
	// Can't observe goroutine identity directly; instead verify by
	// construction: 10 items over 3 workers yields blocks [0,4) [4,7) [7,10).
	_ = assign()
	q, r := 10/3, 10%3
	bounds := []int{0}
	lo := 0
	for w := 0; w < 3; w++ {
		size := q
		if w < r {
			size++
		}
		lo += size
		bounds = append(bounds, lo)
	}
	want := []int{0, 4, 7, 10}
	for i, b := range bounds {
		if b != want[i] {
			t.Fatalf("partition bounds %v, want %v", bounds, want)
		}
	}
}
