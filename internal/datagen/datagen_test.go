package datagen

import (
	"testing"

	"repro/internal/dataset"
)

// TestFigure3Stats asserts the breast-cancer replica reproduces every
// statistic the paper prints in Figure 3 (experiment E3).
func TestFigure3Stats(t *testing.T) {
	d := BreastCancer()
	s := dataset.Summarize(d)
	if s.NumInstances != 286 {
		t.Fatalf("Num Instances = %d, want 286", s.NumInstances)
	}
	if s.NumAttributes != 10 {
		t.Fatalf("Num Attributes = %d, want 10", s.NumAttributes)
	}
	if s.NumDiscrete != 10 || s.NumContinuous != 0 {
		t.Fatalf("discrete=%d continuous=%d, want 10/0", s.NumDiscrete, s.NumContinuous)
	}
	if s.MissingCells != 9 {
		t.Fatalf("missing cells = %d, want 9", s.MissingCells)
	}
	if s.MissingPct < 0.25 || s.MissingPct > 0.35 {
		t.Fatalf("missing pct = %.2f, want ~0.3", s.MissingPct)
	}
	// Figure 3's per-attribute table: name, distinct count, missing count.
	want := []struct {
		name     string
		distinct int
		missing  int
	}{
		{"age", 6, 0},
		{"menopause", 3, 0},
		{"tumor-size", 11, 0},
		{"inv-nodes", 7, 0},
		{"node-caps", 2, 8},
		{"deg-malig", 3, 0},
		{"breast", 2, 0},
		{"breast-quad", 5, 1},
		{"irradiat", 2, 0},
		{"Class", 2, 0},
	}
	for i, w := range want {
		a := s.PerAttribute[i]
		if a.Name != w.name {
			t.Errorf("attribute %d: name %q, want %q", i+1, a.Name, w.name)
		}
		if a.Distinct != w.distinct {
			t.Errorf("%s: distinct = %d, want %d", w.name, a.Distinct, w.distinct)
		}
		if a.Missing != w.missing {
			t.Errorf("%s: missing = %d, want %d", w.name, a.Missing, w.missing)
		}
		if a.Type != "Enum" {
			t.Errorf("%s: type = %q, want Enum", w.name, a.Type)
		}
	}
	// 201 no-recurrence / 85 recurrence.
	counts := d.ClassCounts()
	if counts[0] != 201 || counts[1] != 85 {
		t.Fatalf("class split %v, want [201 85]", counts)
	}
}

func TestBreastCancerDeterministic(t *testing.T) {
	a, b := BreastCancer(), BreastCancer()
	if a.NumInstances() != b.NumInstances() {
		t.Fatal("sizes differ across calls")
	}
	for i := range a.Instances {
		for col := range a.Attrs {
			av, bv := a.Instances[i].Values[col], b.Instances[i].Values[col]
			if av != bv && !(dataset.IsMissing(av) && dataset.IsMissing(bv)) {
				t.Fatalf("cell (%d,%d) differs across calls", i, col)
			}
		}
	}
}

func TestWeather(t *testing.T) {
	d := Weather()
	if d.NumInstances() != 14 || d.NumAttributes() != 5 {
		t.Fatalf("shape %dx%d", d.NumInstances(), d.NumAttributes())
	}
	counts := d.ClassCounts()
	if counts[0] != 9 || counts[1] != 5 {
		t.Fatalf("play distribution %v, want [9 5]", counts)
	}
}

func TestWeatherNumeric(t *testing.T) {
	d := WeatherNumeric()
	if !d.Attrs[1].IsNumeric() || !d.Attrs[2].IsNumeric() {
		t.Fatal("temperature/humidity should be numeric")
	}
	counts := d.ClassCounts()
	if counts[0] != 9 || counts[1] != 5 {
		t.Fatalf("play distribution %v", counts)
	}
}

func TestContactLenses(t *testing.T) {
	d := ContactLenses()
	if d.NumInstances() != 24 {
		t.Fatalf("instances = %d, want 24", d.NumInstances())
	}
	counts := d.ClassCounts()
	// Standard distribution: 5 soft, 4 hard, 15 none.
	if counts[0] != 5 || counts[1] != 4 || counts[2] != 15 {
		t.Fatalf("lens distribution %v, want [5 4 15]", counts)
	}
}

func TestIrisLike(t *testing.T) {
	d := IrisLike(50, 7)
	if d.NumInstances() != 150 || d.NumClasses() != 3 {
		t.Fatalf("shape: %d instances, %d classes", d.NumInstances(), d.NumClasses())
	}
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 50 {
			t.Fatalf("class %d has %v instances", c, n)
		}
	}
	// Petal length separates setosa strongly: class 0 mean ~1.46.
	var sum, n float64
	for _, in := range d.Instances {
		if in.Values[4] == 0 {
			sum += in.Values[2]
			n++
		}
	}
	if mean := sum / n; mean < 1.0 || mean > 2.0 {
		t.Fatalf("setosa petal length mean = %v", mean)
	}
}

func TestGaussianClusters(t *testing.T) {
	d := GaussianClusters(3, 300, 2, 10, 11)
	if d.NumInstances() != 300 || d.NumClasses() != 3 {
		t.Fatalf("shape: %d instances, %d classes", d.NumInstances(), d.NumClasses())
	}
	// With sep=10 the clusters are far apart: per-class x means near 0/10/20.
	sums := make([]float64, 3)
	counts := make([]float64, 3)
	for _, in := range d.Instances {
		c := int(in.Values[2])
		sums[c] += in.Values[0]
		counts[c]++
	}
	for c := 0; c < 3; c++ {
		mean := sums[c] / counts[c]
		want := float64(c) * 10
		if mean < want-1 || mean > want+1 {
			t.Fatalf("cluster %d x-mean = %v, want ~%v", c, mean, want)
		}
	}
}

func TestBaskets(t *testing.T) {
	trans := Baskets(500, 20, 3, 0.95, 13)
	if len(trans) != 500 {
		t.Fatalf("transactions = %d", len(trans))
	}
	// Planted rule: item0 => item1 with high confidence.
	both, onlyA := 0, 0
	for _, tr := range trans {
		hasA, hasB := false, false
		for _, it := range tr {
			if it == "item0" {
				hasA = true
			}
			if it == "item1" {
				hasB = true
			}
		}
		if hasA && hasB {
			both++
		} else if hasA {
			onlyA++
		}
	}
	if both == 0 || float64(both)/float64(both+onlyA) < 0.8 {
		t.Fatalf("planted rule weak: both=%d onlyA=%d", both, onlyA)
	}
}

func TestRandomNominal(t *testing.T) {
	d := RandomNominal(200, 5, 3, 0.05, 17)
	if d.NumInstances() != 200 || d.NumAttributes() != 6 {
		t.Fatalf("shape %dx%d", d.NumInstances(), d.NumAttributes())
	}
	// The class is a near-deterministic parity of a0+a1: check correlation.
	agree := 0
	for _, in := range d.Instances {
		want := (int(in.Values[0]) + int(in.Values[1])) % 2
		if int(in.Values[5]) == want {
			agree++
		}
	}
	if agree < 170 {
		t.Fatalf("parity rule agreement %d/200", agree)
	}
}

func TestSine(t *testing.T) {
	xs := Sine(256, []float64{8}, []float64{1}, 0, 3)
	if len(xs) != 256 {
		t.Fatalf("samples = %d", len(xs))
	}
	// Pure tone: values bounded by amplitude.
	for _, v := range xs {
		if v > 1.01 || v < -1.01 {
			t.Fatalf("sample %v exceeds amplitude", v)
		}
	}
}
