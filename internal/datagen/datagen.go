// Package datagen provides the datasets used by the paper's case study and
// the synthetic workload generators used by the benchmark harness.
//
// The UCI breast-cancer dataset itself cannot be redistributed here, so
// BreastCancer builds a faithful replica matching every statistic the paper
// reports in Figure 3: 286 instances (201 no-recurrence-events / 85
// recurrence-events), 9 nominal attributes plus the class, 9 missing values
// (8 in node-caps, 1 in breast-quad, 0.3% of cells), and the observed
// distinct-value counts per attribute. The conditional distributions are
// chosen so that C4.5 places node-caps at the root of the decision tree, as
// the paper's Figure 4 shows.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// BreastCancer returns the deterministic breast-cancer replica described in
// the package comment. Repeated calls return equal datasets.
func BreastCancer() *dataset.Dataset {
	rng := rand.New(rand.NewSource(40923))
	age := dataset.NewNominalAttribute("age",
		"20-29", "30-39", "40-49", "50-59", "60-69", "70-79")
	menopause := dataset.NewNominalAttribute("menopause", "lt40", "ge40", "premeno")
	tumorSize := dataset.NewNominalAttribute("tumor-size",
		"0-4", "5-9", "10-14", "15-19", "20-24", "25-29", "30-34", "35-39", "40-44", "45-49", "50-54")
	invNodes := dataset.NewNominalAttribute("inv-nodes",
		"0-2", "3-5", "6-8", "9-11", "12-14", "15-17", "24-26")
	nodeCaps := dataset.NewNominalAttribute("node-caps", "yes", "no")
	degMalig := dataset.NewNominalAttribute("deg-malig", "1", "2", "3")
	breast := dataset.NewNominalAttribute("breast", "left", "right")
	breastQuad := dataset.NewNominalAttribute("breast-quad",
		"left-up", "left-low", "right-up", "right-low", "central")
	irradiat := dataset.NewNominalAttribute("irradiat", "yes", "no")
	class := dataset.NewNominalAttribute("Class", "no-recurrence-events", "recurrence-events")

	d := dataset.New("breast-cancer",
		age, menopause, tumorSize, invNodes, nodeCaps, degMalig, breast, breastQuad, irradiat, class)
	d.ClassIndex = 9

	// Conditional sampling tables: index 0 = no-recurrence, 1 = recurrence.
	// node-caps is made strongly class-predictive (it carries the highest
	// gain ratio, so J48 roots the tree on it, matching Figure 4); deg-malig
	// is a weaker secondary signal, everything else is near-noise — the
	// shape of the real UCI data.
	ageW := [2][]float64{{3, 20, 28, 30, 17, 2}, {2, 18, 27, 25, 12, 1}}
	menoW := [2][]float64{{5, 35, 60}, {4, 30, 66}}
	sizeW := [2][]float64{
		{4, 12, 14, 14, 18, 16, 13, 8, 6, 2, 1},
		{1, 4, 8, 10, 18, 18, 16, 12, 8, 3, 2},
	}
	invW := [2][]float64{{85, 8, 4, 2, 1, 0.5, 0.5}, {45, 25, 12, 8, 5, 3, 2}}
	capsW := [2][]float64{{6, 94}, {50, 50}}
	// deg-malig is sampled conditionally on (class, node-caps) so the
	// deg-malig subtree under node-caps=yes survives C4.5 pruning, giving
	// the two-level tree of the paper's Figure 4.
	maligW := [2][2][]float64{
		{{15, 75, 10}, {30, 50, 20}}, // no-recurrence: caps=yes, caps=no
		{{5, 15, 80}, {12, 38, 50}},  // recurrence:    caps=yes, caps=no
	}
	breastW := [2][]float64{{52, 48}, {50, 50}}
	quadW := [2][]float64{{22, 38, 12, 10, 18}, {20, 40, 12, 10, 18}}
	irrW := [2][]float64{{18, 82}, {40, 60}}

	counts := []int{201, 85}
	for cls := 0; cls < 2; cls++ {
		for i := 0; i < counts[cls]; i++ {
			caps := draw(rng, capsW[cls])
			vals := []float64{
				float64(draw(rng, ageW[cls])),
				float64(draw(rng, menoW[cls])),
				float64(draw(rng, sizeW[cls])),
				float64(draw(rng, invW[cls])),
				float64(caps),
				float64(draw(rng, maligW[cls][caps])),
				float64(draw(rng, breastW[cls])),
				float64(draw(rng, quadW[cls])),
				float64(draw(rng, irrW[cls])),
				float64(cls),
			}
			d.MustAdd(dataset.NewInstance(vals))
		}
	}
	// Guarantee every declared label is observed at least once so the
	// Figure-3 distinct counts are exact regardless of sampling noise.
	ensureObserved(d, rng)
	// Exactly 9 missing cells: 8 node-caps, 1 breast-quad (Figure 3).
	missAt := []int{11, 37, 59, 83, 131, 167, 203, 251}
	for _, row := range missAt {
		d.Instances[row].Values[4] = dataset.Missing
	}
	d.Instances[97].Values[7] = dataset.Missing
	d.Shuffle(rand.New(rand.NewSource(7)))
	return d
}

// draw samples an index proportionally to weights.
func draw(rng *rand.Rand, w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	r := rng.Float64() * total
	for i, x := range w {
		r -= x
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}

// ensureObserved rewrites a handful of early cells so that every declared
// nominal label of every non-class attribute occurs at least once.
func ensureObserved(d *dataset.Dataset, rng *rand.Rand) {
	for col, a := range d.Attrs {
		if col == d.ClassIndex || !a.IsNominal() {
			continue
		}
		seen := make([]bool, a.NumValues())
		for _, in := range d.Instances {
			v := in.Values[col]
			if !dataset.IsMissing(v) {
				seen[int(v)] = true
			}
		}
		for lab, ok := range seen {
			if !ok {
				row := rng.Intn(len(d.Instances))
				d.Instances[row].Values[col] = float64(lab)
			}
		}
	}
}

// Weather returns the classic 14-instance nominal weather dataset that ships
// with WEKA (the library the paper's services wrap); it is the conventional
// smoke-test input for every algorithm category.
func Weather() *dataset.Dataset {
	outlook := dataset.NewNominalAttribute("outlook", "sunny", "overcast", "rainy")
	temp := dataset.NewNominalAttribute("temperature", "hot", "mild", "cool")
	humidity := dataset.NewNominalAttribute("humidity", "high", "normal")
	windy := dataset.NewNominalAttribute("windy", "FALSE", "TRUE")
	play := dataset.NewNominalAttribute("play", "yes", "no")
	d := dataset.New("weather.nominal", outlook, temp, humidity, windy, play)
	d.ClassIndex = 4
	rows := [][]string{
		{"sunny", "hot", "high", "FALSE", "no"},
		{"sunny", "hot", "high", "TRUE", "no"},
		{"overcast", "hot", "high", "FALSE", "yes"},
		{"rainy", "mild", "high", "FALSE", "yes"},
		{"rainy", "cool", "normal", "FALSE", "yes"},
		{"rainy", "cool", "normal", "TRUE", "no"},
		{"overcast", "cool", "normal", "TRUE", "yes"},
		{"sunny", "mild", "high", "FALSE", "no"},
		{"sunny", "cool", "normal", "FALSE", "yes"},
		{"rainy", "mild", "normal", "FALSE", "yes"},
		{"sunny", "mild", "normal", "TRUE", "yes"},
		{"overcast", "mild", "high", "TRUE", "yes"},
		{"overcast", "hot", "normal", "FALSE", "yes"},
		{"rainy", "mild", "high", "TRUE", "no"},
	}
	for _, r := range rows {
		if err := d.AddRow(r); err != nil {
			panic(err)
		}
	}
	return d
}

// WeatherNumeric returns the mixed nominal/numeric variant of the weather
// dataset (temperature and humidity as numbers), exercising numeric splits.
func WeatherNumeric() *dataset.Dataset {
	outlook := dataset.NewNominalAttribute("outlook", "sunny", "overcast", "rainy")
	temp := dataset.NewNumericAttribute("temperature")
	humidity := dataset.NewNumericAttribute("humidity")
	windy := dataset.NewNominalAttribute("windy", "FALSE", "TRUE")
	play := dataset.NewNominalAttribute("play", "yes", "no")
	d := dataset.New("weather.numeric", outlook, temp, humidity, windy, play)
	d.ClassIndex = 4
	rows := [][]string{
		{"sunny", "85", "85", "FALSE", "no"},
		{"sunny", "80", "90", "TRUE", "no"},
		{"overcast", "83", "86", "FALSE", "yes"},
		{"rainy", "70", "96", "FALSE", "yes"},
		{"rainy", "68", "80", "FALSE", "yes"},
		{"rainy", "65", "70", "TRUE", "no"},
		{"overcast", "64", "65", "TRUE", "yes"},
		{"sunny", "72", "95", "FALSE", "no"},
		{"sunny", "69", "70", "FALSE", "yes"},
		{"rainy", "75", "80", "FALSE", "yes"},
		{"sunny", "75", "70", "TRUE", "yes"},
		{"overcast", "72", "90", "TRUE", "yes"},
		{"overcast", "81", "75", "FALSE", "yes"},
		{"rainy", "71", "91", "TRUE", "no"},
	}
	for _, r := range rows {
		if err := d.AddRow(r); err != nil {
			panic(err)
		}
	}
	return d
}

// ContactLenses returns the 24-instance contact-lenses dataset, another WEKA
// standard fixture; its class is a pure function of the attributes, which
// makes it a sharp correctness probe for tree learners.
func ContactLenses() *dataset.Dataset {
	ageA := dataset.NewNominalAttribute("age", "young", "pre-presbyopic", "presbyopic")
	spec := dataset.NewNominalAttribute("spectacle-prescrip", "myope", "hypermetrope")
	astig := dataset.NewNominalAttribute("astigmatism", "no", "yes")
	tear := dataset.NewNominalAttribute("tear-prod-rate", "reduced", "normal")
	lens := dataset.NewNominalAttribute("contact-lenses", "soft", "hard", "none")
	d := dataset.New("contact-lenses", ageA, spec, astig, tear, lens)
	d.ClassIndex = 4
	ages := []string{"young", "pre-presbyopic", "presbyopic"}
	specs := []string{"myope", "hypermetrope"}
	yn := []string{"no", "yes"}
	tears := []string{"reduced", "normal"}
	for _, a := range ages {
		for _, s := range specs {
			for _, t := range yn {
				for _, te := range tears {
					cls := "none"
					if te == "normal" {
						if t == "no" {
							cls = "soft"
							if a == "presbyopic" && s == "myope" {
								cls = "none"
							}
						} else {
							if s == "myope" {
								cls = "hard"
							} else if a == "young" {
								cls = "hard"
							} else {
								cls = "none"
							}
						}
					}
					if err := d.AddRow([]string{a, s, t, te, cls}); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	return d
}

// IrisLike returns a numeric three-class dataset with the class structure of
// the UCI iris data: nPerClass instances per class drawn from Gaussians with
// the published per-class means and standard deviations of the four iris
// measurements.
func IrisLike(nPerClass int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"sepallength", "sepalwidth", "petallength", "petalwidth"}
	means := [3][4]float64{
		{5.01, 3.43, 1.46, 0.25}, // setosa
		{5.94, 2.77, 4.26, 1.33}, // versicolor
		{6.59, 2.97, 5.55, 2.03}, // virginica
	}
	sds := [3][4]float64{
		{0.35, 0.38, 0.17, 0.11},
		{0.52, 0.31, 0.47, 0.20},
		{0.64, 0.32, 0.55, 0.27},
	}
	attrs := make([]*dataset.Attribute, 0, 5)
	for _, n := range names {
		attrs = append(attrs, dataset.NewNumericAttribute(n))
	}
	attrs = append(attrs, dataset.NewNominalAttribute("class",
		"Iris-setosa", "Iris-versicolor", "Iris-virginica"))
	d := dataset.New("iris-like", attrs...)
	d.ClassIndex = 4
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < nPerClass; i++ {
			vals := make([]float64, 5)
			for j := 0; j < 4; j++ {
				vals[j] = means[cls][j] + rng.NormFloat64()*sds[cls][j]
			}
			vals[4] = float64(cls)
			d.MustAdd(dataset.NewInstance(vals))
		}
	}
	d.Shuffle(rng)
	return d
}

// GaussianClusters returns n numeric instances in dim dimensions drawn from
// k spherical Gaussians whose centres are sep apart along each axis; the
// class attribute records the generating cluster. This is the clustering
// workload generator.
func GaussianClusters(k, n, dim int, sep float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]*dataset.Attribute, 0, dim+1)
	for j := 0; j < dim; j++ {
		attrs = append(attrs, dataset.NewNumericAttribute(attrName(j)))
	}
	labels := make([]string, k)
	for c := 0; c < k; c++ {
		labels[c] = "cluster" + string(rune('A'+c%26))
	}
	attrs = append(attrs, dataset.NewNominalAttribute("cluster", labels...))
	d := dataset.New("gaussians", attrs...)
	d.ClassIndex = dim
	for i := 0; i < n; i++ {
		c := i % k
		vals := make([]float64, dim+1)
		for j := 0; j < dim; j++ {
			vals[j] = float64(c)*sep + rng.NormFloat64()
		}
		vals[dim] = float64(c)
		d.MustAdd(dataset.NewInstance(vals))
	}
	d.Shuffle(rng)
	return d
}

func attrName(j int) string {
	if j < 26 {
		return "x" + string(rune('a'+j))
	}
	return "x" + string(rune('a'+j/26-1)) + string(rune('a'+j%26))
}

// Baskets returns transactions over nItems items for association-rule
// mining. A set of planted rules (item i implies item i+1 for the first
// nPlanted items, firing with the given confidence) gives Apriori known
// structure to recover.
func Baskets(nTrans, nItems, nPlanted int, confidence float64, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	items := make([]string, nItems)
	for i := range items {
		items[i] = "item" + itoa(i)
	}
	out := make([][]string, nTrans)
	for t := 0; t < nTrans; t++ {
		present := make(map[int]bool)
		for i := 0; i < nItems; i++ {
			if rng.Float64() < 0.25 {
				present[i] = true
			}
		}
		for i := 0; i < nPlanted && i+1 < nItems; i++ {
			if present[i] && rng.Float64() < confidence {
				present[i+1] = true
			}
		}
		var tr []string
		for i := 0; i < nItems; i++ {
			if present[i] {
				tr = append(tr, items[i])
			}
		}
		if len(tr) == 0 {
			tr = append(tr, items[rng.Intn(nItems)])
		}
		out[t] = tr
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// RandomNominal returns a dataset of n instances over nAttrs nominal
// attributes with `cardinality` values each, where the class is a noisy
// function of the first two attributes. Used for scaling benchmarks.
func RandomNominal(n, nAttrs, cardinality int, noise float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]*dataset.Attribute, 0, nAttrs+1)
	for j := 0; j < nAttrs; j++ {
		labels := make([]string, cardinality)
		for v := range labels {
			labels[v] = "v" + itoa(v)
		}
		attrs = append(attrs, dataset.NewNominalAttribute("a"+itoa(j), labels...))
	}
	attrs = append(attrs, dataset.NewNominalAttribute("class", "c0", "c1"))
	d := dataset.New("random-nominal", attrs...)
	d.ClassIndex = nAttrs
	for i := 0; i < n; i++ {
		vals := make([]float64, nAttrs+1)
		for j := 0; j < nAttrs; j++ {
			vals[j] = float64(rng.Intn(cardinality))
		}
		cls := 0
		if (int(vals[0])+int(vals[1]))%2 == 1 {
			cls = 1
		}
		if rng.Float64() < noise {
			cls = 1 - cls
		}
		vals[nAttrs] = float64(cls)
		d.MustAdd(dataset.NewInstance(vals))
	}
	return d
}

// Sine returns n samples of a sum of sinusoids plus Gaussian noise, the
// signal-toolbox workload (§2 mentions Triana's FFT and spectral tools).
func Sine(n int, freqs []float64, amps []float64, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n)
		var v float64
		for j, f := range freqs {
			a := 1.0
			if j < len(amps) {
				a = amps[j]
			}
			v += a * sin2pi(f*t)
		}
		out[i] = v + rng.NormFloat64()*noise
	}
	return out
}

func sin2pi(x float64) float64 { return math.Sin(2 * math.Pi * x) }
