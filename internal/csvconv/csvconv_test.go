package csvconv

import (
	"strings"
	"testing"

	"repro/internal/arff"
	"repro/internal/dataset"
)

const sample = `age,city,income
25,cardiff,31000
31,london,42000
?,cardiff,28000
40,swansea,?
`

func TestParseInference(t *testing.T) {
	d, err := ParseString(sample, Options{HasHeader: true})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.NumInstances() != 4 || d.NumAttributes() != 3 {
		t.Fatalf("shape %dx%d", d.NumInstances(), d.NumAttributes())
	}
	if !d.Attrs[0].IsNumeric() {
		t.Fatal("age should infer numeric")
	}
	if !d.Attrs[1].IsNominal() {
		t.Fatal("city should infer nominal")
	}
	if got := d.Attrs[1].NumValues(); got != 3 {
		t.Fatalf("city has %d values", got)
	}
	if !d.Instances[2].IsMissing(0) || !d.Instances[3].IsMissing(2) {
		t.Fatal("? not treated as missing")
	}
	if d.ClassIndex != 2 {
		t.Fatalf("class index = %d", d.ClassIndex)
	}
}

func TestParseNoHeader(t *testing.T) {
	d, err := ParseString("1,a\n2,b\n", Options{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Attrs[0].Name != "att1" || d.Attrs[1].Name != "att2" {
		t.Fatalf("default names: %s, %s", d.Attrs[0].Name, d.Attrs[1].Name)
	}
}

func TestForceNominal(t *testing.T) {
	d, err := ParseString("code\n1\n2\n1\n", Options{HasHeader: true, ForceNominal: []string{"code"}})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !d.Attrs[0].IsNominal() {
		t.Fatal("forced column not nominal")
	}
}

func TestCustomMissingTokens(t *testing.T) {
	d, err := ParseString("x\n1\nNA\n3\n", Options{HasHeader: true, MissingTokens: []string{"NA"}})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !d.Instances[1].IsMissing(0) {
		t.Fatal("NA not treated as missing")
	}
	if !d.Attrs[0].IsNumeric() {
		t.Fatal("column with NA should still infer numeric")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("", Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ParseString("a,b\n", Options{HasHeader: true}); err == nil {
		t.Fatal("header-only input accepted")
	}
	if _, err := ParseString("a,b\n1\n", Options{HasHeader: true}); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestCSVtoARFFtoCSVRoundTrip(t *testing.T) {
	d, err := ParseString(sample, Options{HasHeader: true, Relation: "people"})
	if err != nil {
		t.Fatal(err)
	}
	// CSV -> dataset -> ARFF -> dataset -> CSV: cells must survive.
	a := arff.Format(d)
	d2, err := arff.ParseString(a)
	if err != nil {
		t.Fatalf("ARFF reparse: %v\n%s", err, a)
	}
	csvOut := Format(d2)
	d3, err := ParseString(csvOut, Options{HasHeader: true})
	if err != nil {
		t.Fatalf("CSV reparse: %v\n%s", err, csvOut)
	}
	if d3.NumInstances() != d.NumInstances() {
		t.Fatalf("row count changed: %d -> %d", d.NumInstances(), d3.NumInstances())
	}
	for i := range d.Instances {
		for col := range d.Attrs {
			want := d.CellString(d.Instances[i], col)
			got := d3.CellString(d3.Instances[i], col)
			if want != got && !(want == "31000" && got == "31000") {
				if normNum(want) != normNum(got) {
					t.Fatalf("cell (%d,%d): %q != %q", i, col, want, got)
				}
			}
		}
	}
}

func normNum(s string) string { return strings.TrimSuffix(s, ".0") }

func TestWriteHeaderAndMissing(t *testing.T) {
	d := dataset.New("w",
		dataset.NewNumericAttribute("x"),
		dataset.NewNominalAttribute("c", "a", "b"))
	d.MustAdd(dataset.NewInstance([]float64{1.5, 0}))
	d.MustAdd(dataset.NewInstance([]float64{dataset.Missing, 1}))
	out := Format(d)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "x,c" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "?,b" {
		t.Fatalf("missing row = %q", lines[2])
	}
}
