// Package csvconv implements the data-manipulation converters of §4.3: a
// tool to convert a CSV file into ARFF format and vice versa, "particularly
// useful for using data sets obtained from commercial software such as
// MS-Excel".
package csvconv

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// Options controls CSV→dataset inference.
type Options struct {
	// HasHeader indicates the first row holds attribute names. When false,
	// attributes are named att1..attN.
	HasHeader bool
	// MissingTokens are cell spellings treated as missing in addition to "?"
	// and the empty string.
	MissingTokens []string
	// ForceNominal lists column names (or att<N> defaults) that must be read
	// as nominal even when every value parses as a number.
	ForceNominal []string
	// Relation names the resulting dataset; defaults to "csv-import".
	Relation string
}

// Parse reads CSV from r, inferring each column's type: a column is numeric
// when every non-missing cell parses as a float, nominal otherwise (the
// nominal domain is the sorted set of observed values).
func Parse(r io.Reader, opt Options) (*dataset.Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csvconv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("csvconv: empty input")
	}
	missing := map[string]bool{"?": true, "": true}
	for _, t := range opt.MissingTokens {
		missing[t] = true
	}
	var names []string
	rows := records
	if opt.HasHeader {
		names = records[0]
		rows = records[1:]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("csvconv: no data rows")
	}
	width := len(rows[0])
	for i, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("csvconv: row %d has %d cells, expected %d", i+1, len(row), width)
		}
	}
	if names == nil {
		names = make([]string, width)
		for i := range names {
			names[i] = fmt.Sprintf("att%d", i+1)
		}
	} else if len(names) != width {
		return nil, fmt.Errorf("csvconv: header has %d cells, data has %d", len(names), width)
	}
	forced := make(map[string]bool, len(opt.ForceNominal))
	for _, n := range opt.ForceNominal {
		forced[n] = true
	}

	attrs := make([]*dataset.Attribute, width)
	for col := 0; col < width; col++ {
		numeric := !forced[names[col]]
		seen := map[string]bool{}
		for _, row := range rows {
			cell := strings.TrimSpace(row[col])
			if missing[cell] {
				continue
			}
			seen[cell] = true
			if numeric {
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					numeric = false
				}
			}
		}
		if numeric && len(seen) > 0 {
			attrs[col] = dataset.NewNumericAttribute(names[col])
		} else {
			labels := make([]string, 0, len(seen))
			for v := range seen {
				labels = append(labels, v)
			}
			sort.Strings(labels)
			attrs[col] = dataset.NewNominalAttribute(names[col], labels...)
		}
	}
	rel := opt.Relation
	if rel == "" {
		rel = "csv-import"
	}
	d := dataset.New(rel, attrs...)
	d.ClassIndex = width - 1
	for i, row := range rows {
		cells := make([]string, width)
		for col, cell := range row {
			cell = strings.TrimSpace(cell)
			if missing[cell] {
				cell = "?"
			}
			cells[col] = cell
		}
		if err := d.AddRow(cells); err != nil {
			return nil, fmt.Errorf("csvconv: row %d: %w", i+1, err)
		}
	}
	return d, nil
}

// ParseString is a convenience wrapper over Parse.
func ParseString(s string, opt Options) (*dataset.Dataset, error) {
	return Parse(strings.NewReader(s), opt)
}

// Write renders d as CSV with a header row; missing cells become "?".
func Write(w io.Writer, d *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, d.NumAttributes())
	for i, a := range d.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvconv: %w", err)
	}
	row := make([]string, d.NumAttributes())
	for _, in := range d.Instances {
		for col := range d.Attrs {
			row[col] = d.CellString(in, col)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvconv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Format renders d as a CSV string.
func Format(d *dataset.Dataset) string {
	var b strings.Builder
	_ = Write(&b, d)
	return b.String()
}
