// Package dataset provides the core data model of the toolkit: attributes,
// instances and datasets in the style of the ARFF (Attribute Relation File
// Format) data model used throughout the paper. Nominal values are encoded
// as indices into the attribute's value list, numeric values are stored
// directly, and missing values are represented by NaN.
package dataset

import (
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the supported attribute types.
type Kind int

const (
	// Numeric attributes hold real-valued measurements.
	Numeric Kind = iota
	// Nominal attributes hold one of a fixed set of symbolic values.
	Nominal
	// String attributes hold free text; values are interned per attribute.
	String
)

// String returns the ARFF spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Nominal:
		return "nominal"
	case String:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Missing is the in-memory representation of a missing value ("?" in ARFF).
var Missing = math.NaN()

// IsMissing reports whether v encodes a missing value.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Attribute describes a single column of a dataset.
type Attribute struct {
	Name   string
	Kind   Kind
	values []string       // nominal labels or interned strings
	index  map[string]int // label -> index
}

// NewNumericAttribute returns a numeric attribute with the given name.
func NewNumericAttribute(name string) *Attribute {
	return &Attribute{Name: name, Kind: Numeric}
}

// NewNominalAttribute returns a nominal attribute with the given labels.
func NewNominalAttribute(name string, labels ...string) *Attribute {
	a := &Attribute{Name: name, Kind: Nominal, index: make(map[string]int, len(labels))}
	for _, l := range labels {
		a.addValue(l)
	}
	return a
}

// NewStringAttribute returns a string attribute; values are interned on use.
func NewStringAttribute(name string) *Attribute {
	return &Attribute{Name: name, Kind: String, index: make(map[string]int)}
}

func (a *Attribute) addValue(label string) int {
	if a.index == nil {
		a.index = make(map[string]int)
	}
	if i, ok := a.index[label]; ok {
		return i
	}
	a.values = append(a.values, label)
	a.index[label] = len(a.values) - 1
	return len(a.values) - 1
}

// NumValues returns the number of declared labels (nominal/string).
func (a *Attribute) NumValues() int { return len(a.values) }

// Values returns a copy of the declared labels.
func (a *Attribute) Values() []string {
	out := make([]string, len(a.values))
	copy(out, a.values)
	return out
}

// Value returns the label at index i, or "?" if i is out of range.
func (a *Attribute) Value(i int) string {
	if i < 0 || i >= len(a.values) {
		return "?"
	}
	return a.values[i]
}

// IndexOf returns the index of label, or -1 when unknown.
func (a *Attribute) IndexOf(label string) int {
	if a.index == nil {
		return -1
	}
	if i, ok := a.index[label]; ok {
		return i
	}
	return -1
}

// Intern returns the index for label, adding it for String attributes.
// For Nominal attributes an unknown label is an error.
func (a *Attribute) Intern(label string) (int, error) {
	switch a.Kind {
	case Nominal:
		if i := a.IndexOf(label); i >= 0 {
			return i, nil
		}
		return -1, fmt.Errorf("dataset: attribute %q has no value %q (declared: %s)",
			a.Name, label, strings.Join(a.values, ","))
	case String:
		return a.addValue(label), nil
	default:
		return -1, fmt.Errorf("dataset: attribute %q is numeric; cannot intern %q", a.Name, label)
	}
}

// IsNominal reports whether the attribute is nominal.
func (a *Attribute) IsNominal() bool { return a.Kind == Nominal }

// IsNumeric reports whether the attribute is numeric.
func (a *Attribute) IsNumeric() bool { return a.Kind == Numeric }

// IsString reports whether the attribute is a string attribute.
func (a *Attribute) IsString() bool { return a.Kind == String }

// Clone returns a deep copy of the attribute.
func (a *Attribute) Clone() *Attribute {
	c := &Attribute{Name: a.Name, Kind: a.Kind}
	if a.values != nil {
		c.values = append([]string(nil), a.values...)
		c.index = make(map[string]int, len(a.values))
		for i, v := range c.values {
			c.index[v] = i
		}
	}
	return c
}

// SpecString returns the ARFF declaration of the attribute, e.g.
// "@attribute age {young,old}" or "@attribute weight numeric".
func (a *Attribute) SpecString() string {
	switch a.Kind {
	case Nominal:
		return fmt.Sprintf("@attribute %s {%s}", quoteName(a.Name), strings.Join(a.values, ","))
	case String:
		return fmt.Sprintf("@attribute %s string", quoteName(a.Name))
	default:
		return fmt.Sprintf("@attribute %s numeric", quoteName(a.Name))
	}
}

func quoteName(s string) string {
	if strings.ContainsAny(s, " \t,{}'\"%") {
		return "'" + strings.ReplaceAll(s, "'", `\'`) + "'"
	}
	return s
}
