package dataset

import (
	"fmt"
	"math/rand"
)

// TrainTestSplit partitions the dataset into train/test shares, with trainFrac
// of the instances (after shuffling with rng) in the training share. The
// returned datasets share the schema with d but not the instance slice.
func TrainTestSplit(d *Dataset, trainFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1)", trainFrac)
	}
	idx := rng.Perm(len(d.Instances))
	nTrain := int(float64(len(idx)) * trainFrac)
	if nTrain == 0 || nTrain == len(idx) {
		return nil, nil, fmt.Errorf("dataset: split leaves an empty share (%d instances)", len(idx))
	}
	trIns := make([]*Instance, 0, nTrain)
	teIns := make([]*Instance, 0, len(idx)-nTrain)
	for i, j := range idx {
		if i < nTrain {
			trIns = append(trIns, d.Instances[j])
		} else {
			teIns = append(teIns, d.Instances[j])
		}
	}
	return d.ShallowWith(trIns), d.ShallowWith(teIns), nil
}

// StratifiedSplit partitions the dataset preserving the class distribution in
// both shares. The class attribute must be nominal.
func StratifiedSplit(d *Dataset, trainFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1)", trainFrac)
	}
	ca := d.ClassAttribute()
	if ca == nil || !ca.IsNominal() {
		return nil, nil, fmt.Errorf("dataset: stratified split requires a nominal class")
	}
	byClass := make([][]*Instance, ca.NumValues()+1) // last bucket: missing class
	for _, in := range d.Instances {
		v := in.Values[d.ClassIndex]
		if IsMissing(v) {
			byClass[ca.NumValues()] = append(byClass[ca.NumValues()], in)
		} else {
			byClass[int(v)] = append(byClass[int(v)], in)
		}
	}
	var trIns, teIns []*Instance
	for _, bucket := range byClass {
		rng.Shuffle(len(bucket), func(i, j int) { bucket[i], bucket[j] = bucket[j], bucket[i] })
		n := int(float64(len(bucket)) * trainFrac)
		trIns = append(trIns, bucket[:n]...)
		teIns = append(teIns, bucket[n:]...)
	}
	if len(trIns) == 0 || len(teIns) == 0 {
		return nil, nil, fmt.Errorf("dataset: stratified split leaves an empty share")
	}
	rng.Shuffle(len(trIns), func(i, j int) { trIns[i], trIns[j] = trIns[j], trIns[i] })
	rng.Shuffle(len(teIns), func(i, j int) { teIns[i], teIns[j] = teIns[j], teIns[i] })
	return d.ShallowWith(trIns), d.ShallowWith(teIns), nil
}

// WeightedResample draws n instances with replacement with probability
// proportional to instance weight; the drawn copies have unit weight
// (boosting substrate).
func WeightedResample(d *Dataset, n int, rng *rand.Rand) *Dataset {
	cum := make([]float64, len(d.Instances))
	var total float64
	for i, in := range d.Instances {
		total += in.Weight
		cum[i] = total
	}
	ins := make([]*Instance, n)
	for i := range ins {
		r := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		c := d.Instances[lo].Clone()
		c.Weight = 1
		ins[i] = c
	}
	return d.ShallowWith(ins)
}
