package dataset

import (
	"fmt"
	"math/rand"
)

// TrainTestSplit partitions the dataset into train/test shares, with trainFrac
// of the instances (after shuffling with rng) in the training share. The
// returned datasets share the schema with d but not the instance slice.
func TrainTestSplit(d *Dataset, trainFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1)", trainFrac)
	}
	idx := rng.Perm(len(d.Instances))
	nTrain := int(float64(len(idx)) * trainFrac)
	if nTrain == 0 || nTrain == len(idx) {
		return nil, nil, fmt.Errorf("dataset: split leaves an empty share (%d instances)", len(idx))
	}
	trIns := make([]*Instance, 0, nTrain)
	teIns := make([]*Instance, 0, len(idx)-nTrain)
	for i, j := range idx {
		if i < nTrain {
			trIns = append(trIns, d.Instances[j])
		} else {
			teIns = append(teIns, d.Instances[j])
		}
	}
	return d.ShallowWith(trIns), d.ShallowWith(teIns), nil
}

// StratifiedSplit partitions the dataset preserving the class distribution in
// both shares. The class attribute must be nominal.
func StratifiedSplit(d *Dataset, trainFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1)", trainFrac)
	}
	ca := d.ClassAttribute()
	if ca == nil || !ca.IsNominal() {
		return nil, nil, fmt.Errorf("dataset: stratified split requires a nominal class")
	}
	byClass := make([][]*Instance, ca.NumValues()+1) // last bucket: missing class
	for _, in := range d.Instances {
		v := in.Values[d.ClassIndex]
		if IsMissing(v) {
			byClass[ca.NumValues()] = append(byClass[ca.NumValues()], in)
		} else {
			byClass[int(v)] = append(byClass[int(v)], in)
		}
	}
	var trIns, teIns []*Instance
	for _, bucket := range byClass {
		rng.Shuffle(len(bucket), func(i, j int) { bucket[i], bucket[j] = bucket[j], bucket[i] })
		n := int(float64(len(bucket)) * trainFrac)
		trIns = append(trIns, bucket[:n]...)
		teIns = append(teIns, bucket[n:]...)
	}
	if len(trIns) == 0 || len(teIns) == 0 {
		return nil, nil, fmt.Errorf("dataset: stratified split leaves an empty share")
	}
	rng.Shuffle(len(trIns), func(i, j int) { trIns[i], trIns[j] = trIns[j], trIns[i] })
	rng.Shuffle(len(teIns), func(i, j int) { teIns[i], teIns[j] = teIns[j], teIns[i] })
	return d.ShallowWith(trIns), d.ShallowWith(teIns), nil
}

// Folds returns k cross-validation folds: folds[i] is the held-out test share
// of fold i, and the corresponding training share is every other fold. When
// the class attribute is nominal the folds are stratified.
//
// Deprecated: use FoldsView, which returns zero-copy views instead of
// instance-slice copies. Folds consumes rng identically to FoldsView, so
// both produce the same fold membership for a given seed. Kept one
// release as a shim.
func Folds(d *Dataset, k int, rng *rand.Rand) ([][]*Instance, error) {
	views, err := FoldsView(d, k, rng)
	if err != nil {
		return nil, err
	}
	folds := make([][]*Instance, k)
	for i, v := range views {
		folds[i] = v.Materialize().Instances
	}
	return folds, nil
}

// TrainTestForFold assembles the train/test datasets for fold i of folds.
//
// Deprecated: use TrainTestViewForFold with FoldsView. Kept one release
// as a shim.
func TrainTestForFold(d *Dataset, folds [][]*Instance, i int) (train, test *Dataset) {
	n := 0
	for j, f := range folds {
		if j != i {
			n += len(f)
		}
	}
	trIns := make([]*Instance, 0, n)
	for j, f := range folds {
		if j != i {
			trIns = append(trIns, f...)
		}
	}
	return d.ShallowWith(trIns), d.ShallowWith(folds[i])
}

// Resample returns a bootstrap sample of d with n instances drawn with
// replacement using rng (bagging substrate).
//
// Deprecated: use ResampleView, which returns a zero-copy view and
// consumes rng identically. Kept one release as a shim.
func Resample(d *Dataset, n int, rng *rand.Rand) *Dataset {
	return ResampleView(d, n, rng).Materialize()
}

// WeightedResample draws n instances with replacement with probability
// proportional to instance weight; the drawn copies have unit weight
// (boosting substrate).
func WeightedResample(d *Dataset, n int, rng *rand.Rand) *Dataset {
	cum := make([]float64, len(d.Instances))
	var total float64
	for i, in := range d.Instances {
		total += in.Weight
		cum[i] = total
	}
	ins := make([]*Instance, n)
	for i := range ins {
		r := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		c := d.Instances[lo].Clone()
		c.Weight = 1
		ins[i] = c
	}
	return d.ShallowWith(ins)
}
