package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Instance is a single data row. Values are parallel to the dataset's
// attributes: numeric cells hold the measurement, nominal/string cells hold
// the value index, and missing cells hold NaN.
type Instance struct {
	Values []float64
	Weight float64
}

// NewInstance returns an instance with unit weight.
func NewInstance(values []float64) *Instance {
	return &Instance{Values: values, Weight: 1}
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	v := make([]float64, len(in.Values))
	copy(v, in.Values)
	return &Instance{Values: v, Weight: in.Weight}
}

// IsMissing reports whether attribute i is missing in this instance.
func (in *Instance) IsMissing(i int) bool { return IsMissing(in.Values[i]) }

// Dataset is an ordered collection of instances sharing a schema, equivalent
// to WEKA's Instances and the ARFF relation the paper's services exchange.
type Dataset struct {
	Relation   string
	Attrs      []*Attribute
	ClassIndex int // -1 when no class attribute is designated
	Instances  []*Instance

	// cols is the columnar (struct-of-arrays) mirror served by Columns:
	// one contiguous []float64 per attribute. It is authoritative for
	// column-first datasets (FromColumns) and a lazily built cache for
	// row-first ones; colsRows records the instance count it reflects so
	// appends invalidate it implicitly.
	cols     [][]float64
	colsRows int

	// slab is the spare row storage AddRow and Project carve
	// Instance.Values from, so bulk loading costs one allocation per
	// chunk of rows instead of one per row.
	slab []float64
}

// rowSlabChunk is the float64 count of one row-storage slab chunk (32 KiB).
const rowSlabChunk = 4096

// rowSlice carves one row's value storage off the slab, growing it by a
// chunk when exhausted. The carved slice has full capacity m, so callers
// appending to it can never clobber a neighbouring row.
func (d *Dataset) rowSlice() []float64 {
	m := len(d.Attrs)
	if m == 0 {
		return nil
	}
	if len(d.slab) < m {
		rows := rowSlabChunk / m
		if rows < 16 {
			rows = 16
		}
		d.slab = make([]float64, rows*m)
	}
	v := d.slab[:m:m]
	d.slab = d.slab[m:]
	return v
}

// New returns an empty dataset with the given relation name and attributes.
// The class index defaults to -1 (unset).
func New(relation string, attrs ...*Attribute) *Dataset {
	return &Dataset{Relation: relation, Attrs: attrs, ClassIndex: -1}
}

// NumInstances returns the number of rows.
func (d *Dataset) NumInstances() int { return len(d.Instances) }

// NumAttributes returns the number of columns.
func (d *Dataset) NumAttributes() int { return len(d.Attrs) }

// Attribute returns the attribute at index i.
func (d *Dataset) Attribute(i int) *Attribute { return d.Attrs[i] }

// AttributeByName returns the attribute with the given name and its index,
// or (nil, -1) when absent.
func (d *Dataset) AttributeByName(name string) (*Attribute, int) {
	for i, a := range d.Attrs {
		if a.Name == name {
			return a, i
		}
	}
	return nil, -1
}

// SetClassByName designates the class attribute by name.
func (d *Dataset) SetClassByName(name string) error {
	if _, i := d.AttributeByName(name); i >= 0 {
		d.ClassIndex = i
		return nil
	}
	return fmt.Errorf("dataset: no attribute named %q", name)
}

// ClassAttribute returns the designated class attribute, or nil.
func (d *Dataset) ClassAttribute() *Attribute {
	if d.ClassIndex < 0 || d.ClassIndex >= len(d.Attrs) {
		return nil
	}
	return d.Attrs[d.ClassIndex]
}

// NumClasses returns the number of class labels, or 0 when no nominal class
// is designated.
func (d *Dataset) NumClasses() int {
	ca := d.ClassAttribute()
	if ca == nil || !ca.IsNominal() {
		return 0
	}
	return ca.NumValues()
}

// ClassValue returns the class cell of instance in.
func (d *Dataset) ClassValue(in *Instance) float64 { return in.Values[d.ClassIndex] }

// Add appends an instance after validating its width and nominal indices.
func (d *Dataset) Add(in *Instance) error {
	if len(in.Values) != len(d.Attrs) {
		return fmt.Errorf("dataset: instance has %d values, schema has %d attributes",
			len(in.Values), len(d.Attrs))
	}
	for i, v := range in.Values {
		if IsMissing(v) {
			continue
		}
		a := d.Attrs[i]
		if a.Kind != Numeric {
			idx := int(v)
			if float64(idx) != v || idx < 0 || idx >= a.NumValues() {
				return fmt.Errorf("dataset: invalid index %v for attribute %q", v, a.Name)
			}
		}
	}
	if in.Weight == 0 {
		in.Weight = 1
	}
	d.Instances = append(d.Instances, in)
	d.InvalidateColumns()
	return nil
}

// MustAdd appends an instance and panics on schema mismatch. It is intended
// for embedded datasets and tests where the schema is known-correct.
func (d *Dataset) MustAdd(in *Instance) {
	if err := d.Add(in); err != nil {
		panic(err)
	}
}

// AddRow parses a row of string cells according to the schema and appends it.
// The token "?" denotes a missing value.
func (d *Dataset) AddRow(cells []string) error {
	if len(cells) != len(d.Attrs) {
		return fmt.Errorf("dataset: row has %d cells, schema has %d attributes", len(cells), len(d.Attrs))
	}
	vals := d.rowSlice()
	for i, c := range cells {
		c = strings.TrimSpace(c)
		if c == "?" || c == "" {
			vals[i] = Missing
			continue
		}
		a := d.Attrs[i]
		switch a.Kind {
		case Numeric:
			f, err := strconv.ParseFloat(c, 64)
			if err != nil {
				return fmt.Errorf("dataset: attribute %q: %w", a.Name, err)
			}
			vals[i] = f
		default:
			idx, err := a.Intern(c)
			if err != nil {
				return err
			}
			vals[i] = float64(idx)
		}
	}
	d.Instances = append(d.Instances, NewInstance(vals))
	d.InvalidateColumns()
	return nil
}

// CellString formats the cell (instance row, attribute col) as its ARFF token.
func (d *Dataset) CellString(in *Instance, col int) string {
	v := in.Values[col]
	if IsMissing(v) {
		return "?"
	}
	a := d.Attrs[col]
	if a.Kind == Numeric {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	return a.Value(int(v))
}

// CloneSchema returns an empty dataset with deep-copied attributes and the
// same class index.
func (d *Dataset) CloneSchema() *Dataset {
	attrs := make([]*Attribute, len(d.Attrs))
	for i, a := range d.Attrs {
		attrs[i] = a.Clone()
	}
	c := New(d.Relation, attrs...)
	c.ClassIndex = d.ClassIndex
	return c
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := d.CloneSchema()
	c.Instances = make([]*Instance, len(d.Instances))
	for i, in := range d.Instances {
		c.Instances[i] = in.Clone()
	}
	return c
}

// ShallowWith returns a dataset sharing this schema but holding the given
// instance slice (instances are not copied).
func (d *Dataset) ShallowWith(ins []*Instance) *Dataset {
	c := &Dataset{Relation: d.Relation, Attrs: d.Attrs, ClassIndex: d.ClassIndex, Instances: ins}
	return c
}

// Shuffle permutes the instances using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Instances), func(i, j int) {
		d.Instances[i], d.Instances[j] = d.Instances[j], d.Instances[i]
	})
	d.InvalidateColumns()
}

// TotalWeight returns the sum of instance weights.
func (d *Dataset) TotalWeight() float64 {
	var w float64
	for _, in := range d.Instances {
		w += in.Weight
	}
	return w
}

// ClassCounts returns the per-label weight mass of the class attribute,
// ignoring instances with a missing class.
func (d *Dataset) ClassCounts() []float64 {
	n := d.NumClasses()
	counts := make([]float64, n)
	for _, in := range d.Instances {
		cv := in.Values[d.ClassIndex]
		if IsMissing(cv) {
			continue
		}
		counts[int(cv)] += in.Weight
	}
	return counts
}

// MajorityClass returns the index of the heaviest class label.
func (d *Dataset) MajorityClass() int {
	counts := d.ClassCounts()
	best, bestW := 0, math.Inf(-1)
	for i, w := range counts {
		if w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// DeleteWithMissingClass returns a shallow dataset without instances whose
// class value is missing.
func (d *Dataset) DeleteWithMissingClass() *Dataset {
	keep := make([]*Instance, 0, len(d.Instances))
	for _, in := range d.Instances {
		if d.ClassIndex >= 0 && in.IsMissing(d.ClassIndex) {
			continue
		}
		keep = append(keep, in)
	}
	return d.ShallowWith(keep)
}

// Project returns a new dataset containing only the attributes at the given
// column indices (deep-copied schema, deep-copied rows). If the class column
// is included its position is tracked; otherwise ClassIndex is -1.
func (d *Dataset) Project(cols []int) (*Dataset, error) {
	attrs := make([]*Attribute, len(cols))
	classAt := -1
	for i, c := range cols {
		if c < 0 || c >= len(d.Attrs) {
			return nil, fmt.Errorf("dataset: column %d out of range", c)
		}
		attrs[i] = d.Attrs[c].Clone()
		if c == d.ClassIndex {
			classAt = i
		}
	}
	out := New(d.Relation, attrs...)
	out.ClassIndex = classAt
	// One slab sized for the whole projection instead of one allocation
	// per row; rowSlice then carves every row from it.
	out.slab = make([]float64, len(d.Instances)*len(cols))
	out.Instances = make([]*Instance, 0, len(d.Instances))
	for _, in := range d.Instances {
		vals := out.rowSlice()
		for i, c := range cols {
			vals[i] = in.Values[c]
		}
		out.Instances = append(out.Instances, &Instance{Values: vals, Weight: in.Weight})
	}
	return out, nil
}

// String returns a short human-readable description of the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d instances, %d attributes", d.Relation, len(d.Instances), len(d.Attrs))
}
