package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Digest returns a canonical content digest of the dataset: relation name,
// schema (attribute names, kinds, nominal value sets), designated class
// index, and every cell value and instance weight. Two datasets with the
// same logical content share a digest regardless of how their ARFF text
// was formatted; two datasets differing in any cell never do. It is the
// dataset component of the model store's content-addressed key (a trained
// model is a pure function of algorithm + options + training data).
func Digest(d *Dataset) string {
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		h.Write([]byte(s))
	}
	writeF64 := func(f float64) {
		// NaN (the missing marker) has many bit patterns; canonicalise.
		if math.IsNaN(f) {
			f = math.NaN()
		}
		writeU64(math.Float64bits(f))
	}
	writeStr(d.Relation)
	writeU64(uint64(len(d.Attrs)))
	for _, a := range d.Attrs {
		writeStr(a.Name)
		writeU64(uint64(a.Kind))
		writeU64(uint64(a.NumValues()))
		for i := 0; i < a.NumValues(); i++ {
			writeStr(a.Value(i))
		}
	}
	writeU64(uint64(uint32(d.ClassIndex)))
	writeU64(uint64(len(d.Instances)))
	for _, in := range d.Instances {
		writeU64(uint64(len(in.Values)))
		for _, v := range in.Values {
			writeF64(v)
		}
		writeF64(in.Weight)
	}
	return hex.EncodeToString(h.Sum(nil))
}
