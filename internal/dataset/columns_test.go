package dataset

import (
	"math"
	"testing"
)

func twoColSchema() []*Attribute {
	return []*Attribute{
		NewNumericAttribute("x"),
		NewNominalAttribute("class", "a", "b"),
	}
}

func TestColumnsMirrorsRows(t *testing.T) {
	d := New("t", twoColSchema()...)
	d.ClassIndex = 1
	d.MustAdd(NewInstance([]float64{1.5, 0}))
	d.MustAdd(NewInstance([]float64{Missing, 1}))
	d.MustAdd(NewInstance([]float64{-3, 0}))

	cols := d.Columns()
	if len(cols) != 2 {
		t.Fatalf("got %d columns, want 2", len(cols))
	}
	if len(cols[0]) != 3 || len(cols[1]) != 3 {
		t.Fatalf("column lengths = %d,%d, want 3,3", len(cols[0]), len(cols[1]))
	}
	if cols[0][0] != 1.5 || !math.IsNaN(cols[0][1]) || cols[0][2] != -3 {
		t.Errorf("numeric column = %v", cols[0])
	}
	if cols[1][0] != 0 || cols[1][1] != 1 || cols[1][2] != 0 {
		t.Errorf("nominal column = %v", cols[1])
	}
	if !d.HasColumns() {
		t.Error("HasColumns false after Columns()")
	}
	// Cached: same backing on repeat call.
	if &d.Columns()[0][0] != &cols[0][0] {
		t.Error("Columns rebuilt despite no mutation")
	}
}

func TestColumnsInvalidatedByAdd(t *testing.T) {
	d := New("t", twoColSchema()...)
	d.MustAdd(NewInstance([]float64{1, 0}))
	_ = d.Columns()
	d.MustAdd(NewInstance([]float64{2, 1}))
	if d.HasColumns() {
		t.Fatal("column cache survived Add")
	}
	cols := d.Columns()
	if len(cols[0]) != 2 || cols[0][1] != 2 {
		t.Fatalf("rebuilt column = %v, want [1 2]", cols[0])
	}
}

func TestInvalidateColumnsAfterCellWrite(t *testing.T) {
	d := New("t", twoColSchema()...)
	d.MustAdd(NewInstance([]float64{1, 0}))
	_ = d.Columns()
	d.Instances[0].Values[0] = 42
	d.InvalidateColumns()
	if got := d.Column(0)[0]; got != 42 {
		t.Fatalf("column sees %v after invalidate, want 42", got)
	}
}

func TestAddRowSlabRowsAreIndependent(t *testing.T) {
	d := New("t", twoColSchema()...)
	for i := 0; i < 100; i++ {
		if err := d.AddRow([]string{"1", "a"}); err != nil {
			t.Fatal(err)
		}
	}
	// Writing one row must not bleed into neighbours carved from the
	// same slab.
	d.Instances[10].Values[0] = 99
	d.Instances[10].Values[1] = 1
	for i, in := range d.Instances {
		if i == 10 {
			continue
		}
		if in.Values[0] != 1 || in.Values[1] != 0 {
			t.Fatalf("row %d corrupted: %v", i, in.Values)
		}
	}
	// Appending to a row slice must not clobber the next row (capacity
	// is capped at the row width).
	grown := append(d.Instances[20].Values, 7)
	_ = grown
	if d.Instances[21].Values[0] != 1 {
		t.Fatal("append to row 20 clobbered row 21")
	}
}

func TestFromColumnsRoundTrip(t *testing.T) {
	attrs := twoColSchema()
	cols := [][]float64{
		{1, Missing, 3},
		{0, 1, Missing},
	}
	weights := []float64{1, 2, 0.5}
	d, err := FromColumns("rt", attrs, 1, cols, weights)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumInstances() != 3 || d.ClassIndex != 1 {
		t.Fatalf("got %d rows class %d", d.NumInstances(), d.ClassIndex)
	}
	if !d.HasColumns() {
		t.Error("column-first dataset lost its columns")
	}
	// Row view mirrors the columns exactly.
	for i, in := range d.Instances {
		for j := range attrs {
			want, got := cols[j][i], in.Values[j]
			if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && want != got) {
				t.Errorf("row %d col %d = %v, want %v", i, j, got, want)
			}
		}
		if in.Weight != weights[i] {
			t.Errorf("row %d weight = %v, want %v", i, in.Weight, weights[i])
		}
	}
}

func TestFromColumnsNilWeightsUnit(t *testing.T) {
	d, err := FromColumns("u", []*Attribute{NewNumericAttribute("x")}, -1, [][]float64{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Instances {
		if in.Weight != 1 {
			t.Fatalf("weight = %v, want 1", in.Weight)
		}
	}
}

func TestFromColumnsValidation(t *testing.T) {
	attrs := twoColSchema()
	cases := []struct {
		name       string
		classIndex int
		cols       [][]float64
		weights    []float64
	}{
		{"column count mismatch", 1, [][]float64{{1}}, nil},
		{"ragged columns", 1, [][]float64{{1, 2}, {0}}, nil},
		{"class index out of range", 2, [][]float64{{1}, {0}}, nil},
		{"non-integral nominal", 1, [][]float64{{1}, {0.5}}, nil},
		{"nominal index out of range", 1, [][]float64{{1}, {2}}, nil},
		{"negative nominal index", 1, [][]float64{{1}, {-1}}, nil},
		{"weights length mismatch", 1, [][]float64{{1}, {0}}, []float64{1, 2}},
	}
	for _, tc := range cases {
		if _, err := FromColumns("bad", attrs, tc.classIndex, tc.cols, tc.weights); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestFromColumnsZeroRows(t *testing.T) {
	d, err := FromColumns("empty", twoColSchema(), 1, [][]float64{{}, {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumInstances() != 0 {
		t.Fatalf("got %d rows, want 0", d.NumInstances())
	}
}

func TestProjectSharesOneSlab(t *testing.T) {
	d := New("t", NewNumericAttribute("a"), NewNumericAttribute("b"), NewNumericAttribute("c"))
	for i := 0; i < 10; i++ {
		d.MustAdd(NewInstance([]float64{float64(i), float64(i * 2), float64(i * 3)}))
	}
	p, err := d.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range p.Instances {
		if in.Values[0] != float64(i*3) || in.Values[1] != float64(i) {
			t.Fatalf("row %d = %v", i, in.Values)
		}
	}
	// Projection rows must be independent despite the shared slab.
	p.Instances[3].Values[0] = -1
	if p.Instances[2].Values[1] == -1 || p.Instances[4].Values[0] == -1 {
		t.Fatal("projection rows share storage")
	}
}

func BenchmarkAddRows(b *testing.B) {
	attrs := []*Attribute{
		NewNumericAttribute("a"), NewNumericAttribute("b"),
		NewNumericAttribute("c"), NewNumericAttribute("d"),
		NewNominalAttribute("class", "x", "y"),
	}
	row := []string{"1.5", "2.5", "3.5", "4.5", "x"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New("bench", attrs...)
		d.ClassIndex = 4
		for r := 0; r < 1000; r++ {
			if err := d.AddRow(row); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkColumnsBuild(b *testing.B) {
	d := New("bench",
		NewNumericAttribute("a"), NewNumericAttribute("b"),
		NewNumericAttribute("c"), NewNumericAttribute("d"))
	for r := 0; r < 1000; r++ {
		d.MustAdd(NewInstance([]float64{1, 2, 3, 4}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.InvalidateColumns()
		_ = d.Columns()
	}
}
