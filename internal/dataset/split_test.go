package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrainTestSplit(t *testing.T) {
	d := twoClassSet(t, 100)
	train, test, err := TrainTestSplit(d, 0.66, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("TrainTestSplit: %v", err)
	}
	if train.NumInstances() != 66 || test.NumInstances() != 34 {
		t.Fatalf("split sizes %d/%d", train.NumInstances(), test.NumInstances())
	}
	// Shares are disjoint and cover everything.
	seen := map[*Instance]int{}
	for _, in := range train.Instances {
		seen[in]++
	}
	for _, in := range test.Instances {
		seen[in]++
	}
	if len(seen) != 100 {
		t.Fatalf("shares cover %d distinct instances", len(seen))
	}
	for _, n := range seen {
		if n != 1 {
			t.Fatal("instance appears in both shares")
		}
	}
	if _, _, err := TrainTestSplit(d, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("trainFrac 0 accepted")
	}
	if _, _, err := TrainTestSplit(d, 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("trainFrac > 1 accepted")
	}
}

func TestStratifiedSplitPreservesDistribution(t *testing.T) {
	d := twoClassSet(t, 100) // exactly 50/50
	train, test, err := StratifiedSplit(d, 0.7, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("StratifiedSplit: %v", err)
	}
	tc := train.ClassCounts()
	if tc[0] != 35 || tc[1] != 35 {
		t.Fatalf("train class counts %v, want perfect stratification", tc)
	}
	ec := test.ClassCounts()
	if ec[0] != 15 || ec[1] != 15 {
		t.Fatalf("test class counts %v", ec)
	}
}

func TestFoldsStratifiedAndComplete(t *testing.T) {
	d := twoClassSet(t, 100)
	folds, err := FoldsView(d, 10, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("FoldsView: %v", err)
	}
	total := 0
	for i, f := range folds {
		total += f.NumInstances()
		if f.NumInstances() != 10 {
			t.Fatalf("fold %d has %d instances", i, f.NumInstances())
		}
		// Stratification: each fold should hold 5 of each class.
		var c0 int
		for j := 0; j < f.NumInstances(); j++ {
			if f.Instance(j).Values[2] == 0 {
				c0++
			}
		}
		if c0 != 5 {
			t.Fatalf("fold %d has %d of class 0", i, c0)
		}
	}
	if total != 100 {
		t.Fatalf("folds cover %d instances", total)
	}
	train, test := TrainTestViewForFold(d, folds, 0)
	if train.NumInstances() != 90 || test.NumInstances() != 10 {
		t.Fatalf("fold-0 shares: %d/%d", train.NumInstances(), test.NumInstances())
	}
	if _, err := FoldsView(d, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := FoldsView(d, 101, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestFoldsProperty(t *testing.T) {
	// For any n >= k >= 2, folds partition the instances exactly.
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 4
		k := int(kRaw)%3 + 2
		d := New("p", NewNumericAttribute("x"), NewNominalAttribute("c", "a", "b"))
		d.ClassIndex = 1
		for i := 0; i < n; i++ {
			d.MustAdd(NewInstance([]float64{float64(i), float64(i % 2)}))
		}
		folds, err := FoldsView(d, k, rand.New(rand.NewSource(int64(n*k))))
		if err != nil {
			return false
		}
		seen := map[*Instance]bool{}
		total := 0
		for _, f := range folds {
			total += f.NumInstances()
			for j := 0; j < f.NumInstances(); j++ {
				in := f.Instance(j)
				if seen[in] {
					return false
				}
				seen[in] = true
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResample(t *testing.T) {
	d := twoClassSet(t, 10)
	r := ResampleView(d, 25, rand.New(rand.NewSource(4)))
	if r.NumInstances() != 25 {
		t.Fatalf("ResampleView size = %d", r.NumInstances())
	}
}

func TestWeightedResampleFavoursHeavy(t *testing.T) {
	d := twoClassSet(t, 10)
	// Make instance 0 dominate the weight mass.
	for i, in := range d.Instances {
		if i == 0 {
			in.Weight = 1000
		} else {
			in.Weight = 1
		}
	}
	r := WeightedResample(d, 200, rand.New(rand.NewSource(5)))
	heavy := 0
	for _, in := range r.Instances {
		if in.Values[0] == 0 {
			heavy++
		}
	}
	if heavy < 150 {
		t.Fatalf("heavy instance drawn only %d/200 times", heavy)
	}
	// Draws carry unit weight.
	for _, in := range r.Instances {
		if in.Weight != 1 {
			t.Fatalf("resampled weight = %v", in.Weight)
		}
	}
}
