package dataset

import (
	"math/rand"
	"testing"
)

func viewTestDataset(n int) *Dataset {
	d := &Dataset{
		Relation: "view-test",
		Attrs: []*Attribute{
			NewNumericAttribute("x"),
			NewNominalAttribute("class", "a", "b", "c"),
		},
		ClassIndex: 1,
	}
	for i := 0; i < n; i++ {
		d.Instances = append(d.Instances, &Instance{
			Values: []float64{float64(i), float64(i % 3)},
			Weight: 1,
		})
	}
	return d
}

func TestViewSharesInstances(t *testing.T) {
	d := viewTestDataset(10)
	v := NewView(d, []int{2, 5, 7})
	if v.NumInstances() != 3 {
		t.Fatalf("NumInstances = %d", v.NumInstances())
	}
	for i, r := range []int{2, 5, 7} {
		if v.Instance(i) != d.Instances[r] {
			t.Fatalf("Instance(%d) is not parent row %d", i, r)
		}
	}
	m := v.Materialize()
	if m.ClassIndex != d.ClassIndex || len(m.Attrs) != len(d.Attrs) {
		t.Fatal("Materialize lost schema")
	}
	for i := range m.Instances {
		if m.Instances[i] != v.Instance(i) {
			t.Fatal("Materialize copied instances instead of sharing pointers")
		}
	}
}

func TestAllCoversDataset(t *testing.T) {
	d := viewTestDataset(6)
	v := All(d)
	if v.NumInstances() != 6 || v.Parent() != d {
		t.Fatal("All view wrong shape")
	}
	for i := range d.Instances {
		if v.Instance(i) != d.Instances[i] {
			t.Fatalf("All view reorders rows at %d", i)
		}
	}
}

// FoldsView is seed-deterministic: the same rng seed must reproduce the
// same fold membership, and the folds partition the dataset exactly.
func TestFoldsViewDeterministicPartition(t *testing.T) {
	d := viewTestDataset(31)
	views, err := FoldsView(d, 5, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	again, err := FoldsView(d, 5, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != len(again) {
		t.Fatalf("%d vs %d folds across runs", len(views), len(again))
	}
	total := 0
	seen := map[*Instance]bool{}
	for i := range views {
		if views[i].NumInstances() != again[i].NumInstances() {
			t.Fatalf("fold %d size differs across same-seed runs", i)
		}
		for j := 0; j < views[i].NumInstances(); j++ {
			if views[i].Instance(j) != again[i].Instance(j) {
				t.Fatalf("fold %d row %d differs across same-seed runs", i, j)
			}
			if seen[views[i].Instance(j)] {
				t.Fatalf("fold %d row %d appears in two folds", i, j)
			}
			seen[views[i].Instance(j)] = true
		}
		total += views[i].NumInstances()
	}
	if total != d.NumInstances() {
		t.Fatalf("folds cover %d of %d instances", total, d.NumInstances())
	}
}

func TestTrainTestViewForFold(t *testing.T) {
	d := viewTestDataset(20)
	views, err := FoldsView(d, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range views {
		train, test := TrainTestViewForFold(d, views, i)
		if test != views[i] {
			t.Fatalf("fold %d: test is not folds[i]", i)
		}
		if train.NumInstances()+test.NumInstances() != d.NumInstances() {
			t.Fatalf("fold %d: train %d + test %d != %d",
				i, train.NumInstances(), test.NumInstances(), d.NumInstances())
		}
		seen := map[*Instance]bool{}
		for j := 0; j < train.NumInstances(); j++ {
			seen[train.Instance(j)] = true
		}
		for j := 0; j < test.NumInstances(); j++ {
			if seen[test.Instance(j)] {
				t.Fatalf("fold %d: instance in both shares", i)
			}
		}
	}
}

func TestResampleViewDeterministic(t *testing.T) {
	d := viewTestDataset(15)
	v := ResampleView(d, 30, rand.New(rand.NewSource(3)))
	again := ResampleView(d, 30, rand.New(rand.NewSource(3)))
	if v.NumInstances() != 30 || again.NumInstances() != 30 {
		t.Fatal("wrong sample size")
	}
	for i := 0; i < v.NumInstances(); i++ {
		if v.Instance(i) != again.Instance(i) {
			t.Fatalf("draw %d differs across same-seed runs", i)
		}
	}
}
