package dataset

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func twoClassSet(t *testing.T, n int) *Dataset {
	t.Helper()
	d := New("test",
		NewNumericAttribute("x"),
		NewNominalAttribute("colour", "red", "green", "blue"),
		NewNominalAttribute("class", "a", "b"))
	d.ClassIndex = 2
	for i := 0; i < n; i++ {
		vals := []float64{float64(i), float64(i % 3), float64(i % 2)}
		if err := d.Add(NewInstance(vals)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return d
}

func TestAttributeBasics(t *testing.T) {
	a := NewNominalAttribute("colour", "red", "green", "blue")
	if a.NumValues() != 3 {
		t.Fatalf("NumValues = %d, want 3", a.NumValues())
	}
	if a.IndexOf("green") != 1 {
		t.Fatalf("IndexOf(green) = %d, want 1", a.IndexOf("green"))
	}
	if a.IndexOf("mauve") != -1 {
		t.Fatalf("IndexOf(mauve) = %d, want -1", a.IndexOf("mauve"))
	}
	if a.Value(2) != "blue" {
		t.Fatalf("Value(2) = %q", a.Value(2))
	}
	if a.Value(99) != "?" {
		t.Fatalf("Value(99) = %q, want ?", a.Value(99))
	}
	if _, err := a.Intern("mauve"); err == nil {
		t.Fatal("Intern of unknown nominal label should fail")
	}
	s := NewStringAttribute("note")
	i1, err := s.Intern("hello")
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	i2, _ := s.Intern("world")
	i3, _ := s.Intern("hello")
	if i1 != i3 || i1 == i2 {
		t.Fatalf("string interning broken: %d %d %d", i1, i2, i3)
	}
}

func TestAttributeClone(t *testing.T) {
	a := NewNominalAttribute("c", "x", "y")
	c := a.Clone()
	if _, err := c.Intern("x"); err != nil {
		t.Fatalf("clone lost index: %v", err)
	}
	c.Name = "renamed"
	if a.Name != "c" {
		t.Fatal("clone aliases original")
	}
}

func TestAttributeSpecString(t *testing.T) {
	if got := NewNumericAttribute("weight").SpecString(); got != "@attribute weight numeric" {
		t.Fatalf("numeric spec = %q", got)
	}
	if got := NewNominalAttribute("c", "a", "b").SpecString(); got != "@attribute c {a,b}" {
		t.Fatalf("nominal spec = %q", got)
	}
	if got := NewNumericAttribute("has space").SpecString(); !strings.Contains(got, "'has space'") {
		t.Fatalf("quoted spec = %q", got)
	}
}

func TestAddValidation(t *testing.T) {
	d := twoClassSet(t, 4)
	if err := d.Add(NewInstance([]float64{1, 2})); err == nil {
		t.Fatal("wrong-width instance accepted")
	}
	if err := d.Add(NewInstance([]float64{1, 7, 0})); err == nil {
		t.Fatal("out-of-range nominal index accepted")
	}
	if err := d.Add(NewInstance([]float64{1, 0.5, 0})); err == nil {
		t.Fatal("fractional nominal index accepted")
	}
	if err := d.Add(NewInstance([]float64{1, Missing, Missing})); err != nil {
		t.Fatalf("missing values rejected: %v", err)
	}
}

func TestAddRow(t *testing.T) {
	d := twoClassSet(t, 0)
	if err := d.AddRow([]string{"3.5", "red", "b"}); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	if err := d.AddRow([]string{"?", "?", "a"}); err != nil {
		t.Fatalf("AddRow missing: %v", err)
	}
	in := d.Instances[0]
	if in.Values[0] != 3.5 || in.Values[1] != 0 || in.Values[2] != 1 {
		t.Fatalf("parsed row = %v", in.Values)
	}
	if !d.Instances[1].IsMissing(0) || !d.Instances[1].IsMissing(1) {
		t.Fatal("? cells not missing")
	}
	if err := d.AddRow([]string{"abc", "red", "a"}); err == nil {
		t.Fatal("non-numeric cell accepted for numeric attribute")
	}
	if err := d.AddRow([]string{"1", "purple", "a"}); err == nil {
		t.Fatal("unknown nominal value accepted")
	}
}

func TestClassHelpers(t *testing.T) {
	d := twoClassSet(t, 10)
	if d.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", d.NumClasses())
	}
	counts := d.ClassCounts()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("ClassCounts = %v", counts)
	}
	d.Instances[0].Values[2] = Missing
	if got := d.DeleteWithMissingClass().NumInstances(); got != 9 {
		t.Fatalf("DeleteWithMissingClass -> %d instances", got)
	}
	if err := d.SetClassByName("colour"); err != nil {
		t.Fatalf("SetClassByName: %v", err)
	}
	if d.ClassIndex != 1 {
		t.Fatalf("ClassIndex = %d", d.ClassIndex)
	}
	if err := d.SetClassByName("nope"); err == nil {
		t.Fatal("SetClassByName accepted unknown attribute")
	}
}

func TestMajorityClass(t *testing.T) {
	d := twoClassSet(t, 9) // 5 of class a (even i), 4 of class b
	if got := d.MajorityClass(); got != 0 {
		t.Fatalf("MajorityClass = %d, want 0", got)
	}
}

func TestCellString(t *testing.T) {
	d := twoClassSet(t, 1)
	in := d.Instances[0]
	if got := d.CellString(in, 1); got != "red" {
		t.Fatalf("CellString nominal = %q", got)
	}
	in.Values[0] = Missing
	if got := d.CellString(in, 0); got != "?" {
		t.Fatalf("CellString missing = %q", got)
	}
}

func TestProject(t *testing.T) {
	d := twoClassSet(t, 6)
	p, err := d.Project([]int{1, 2})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.NumAttributes() != 2 || p.ClassIndex != 1 {
		t.Fatalf("projected schema: %d attrs, class %d", p.NumAttributes(), p.ClassIndex)
	}
	if p.NumInstances() != 6 {
		t.Fatalf("projected rows = %d", p.NumInstances())
	}
	// Class excluded -> ClassIndex -1.
	p2, err := d.Project([]int{0})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p2.ClassIndex != -1 {
		t.Fatalf("classless projection has ClassIndex %d", p2.ClassIndex)
	}
	if _, err := d.Project([]int{99}); err == nil {
		t.Fatal("out-of-range projection accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := twoClassSet(t, 3)
	c := d.Clone()
	c.Instances[0].Values[0] = 999
	if d.Instances[0].Values[0] == 999 {
		t.Fatal("Clone aliases instance data")
	}
}

func TestSummarizeFigure3Shape(t *testing.T) {
	d := twoClassSet(t, 10)
	d.Instances[0].Values[0] = Missing
	s := Summarize(d)
	if s.NumInstances != 10 || s.NumAttributes != 3 {
		t.Fatalf("summary header: %+v", s)
	}
	if s.NumDiscrete != 2 || s.NumContinuous != 1 {
		t.Fatalf("type counts: discrete=%d continuous=%d", s.NumDiscrete, s.NumContinuous)
	}
	if s.MissingCells != 1 {
		t.Fatalf("missing cells = %d", s.MissingCells)
	}
	if s.PerAttribute[1].Type != "Enum" || s.PerAttribute[0].Type != "Int" {
		t.Fatalf("per-attribute types: %+v", s.PerAttribute)
	}
	txt := s.Format()
	for _, want := range []string{"Num Instances 10", "Num Attributes 3", "Missing values 1"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Format() lacks %q:\n%s", want, txt)
		}
	}
}

func TestSummarizeNumericMoments(t *testing.T) {
	d := New("m", NewNumericAttribute("x"))
	d.ClassIndex = -1
	for _, v := range []float64{1, 2, 3, 4} {
		d.MustAdd(NewInstance([]float64{v}))
	}
	s := Summarize(d)
	a := s.PerAttribute[0]
	if a.Min != 1 || a.Max != 4 || a.Mean != 2.5 {
		t.Fatalf("moments: %+v", a)
	}
	if math.Abs(a.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("stddev = %v", a.StdDev)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Entropy(5,5) = %v, want 1", got)
	}
	if got := Entropy([]float64{10, 0}); got != 0 {
		t.Fatalf("Entropy(10,0) = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Fatalf("Entropy(nil) = %v", got)
	}
	// 4-way uniform = 2 bits.
	if got := Entropy([]float64{1, 1, 1, 1}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Entropy uniform4 = %v", got)
	}
}

func TestEntropyProperty(t *testing.T) {
	// Entropy is non-negative and bounded by log2(k).
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]float64, len(raw))
		for i, v := range raw {
			counts[i] = float64(v)
		}
		h := Entropy(counts)
		return h >= 0 && h <= math.Log2(float64(len(counts)))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSortByAttribute(t *testing.T) {
	d := New("s", NewNumericAttribute("x"))
	for _, v := range []float64{3, Missing, 1, 2} {
		d.MustAdd(NewInstance([]float64{v}))
	}
	d.SortByAttribute(0)
	got := []float64{d.Instances[0].Values[0], d.Instances[1].Values[0], d.Instances[2].Values[0]}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("sorted prefix = %v", got)
	}
	if !d.Instances[3].IsMissing(0) {
		t.Fatal("missing value not sorted last")
	}
}

func TestValueCountsAndNumericColumn(t *testing.T) {
	d := twoClassSet(t, 6)
	vc := d.ValueCounts(1)
	if vc[0] != 2 || vc[1] != 2 || vc[2] != 2 {
		t.Fatalf("ValueCounts = %v", vc)
	}
	d.Instances[0].Values[0] = Missing
	col := d.NumericColumn(0)
	if len(col) != 5 {
		t.Fatalf("NumericColumn has %d values", len(col))
	}
}

func TestShuffleDeterministic(t *testing.T) {
	d1 := twoClassSet(t, 20)
	d2 := twoClassSet(t, 20)
	d1.Shuffle(rand.New(rand.NewSource(5)))
	d2.Shuffle(rand.New(rand.NewSource(5)))
	for i := range d1.Instances {
		if d1.Instances[i].Values[0] != d2.Instances[i].Values[0] {
			t.Fatal("same-seed shuffles differ")
		}
	}
}
