package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AttrStats summarises one attribute over a dataset, mirroring one row of the
// per-attribute table in the paper's Figure 3.
type AttrStats struct {
	Name     string
	Type     string  // "Enum", "Int", "Real" or "Str"
	EnumPct  float64 // percentage of non-missing values that are enumerated
	IntPct   float64 // percentage of non-missing values that are integral numerics
	RealPct  float64 // percentage of non-missing values that are fractional numerics
	Missing  int     // number of missing cells
	MissPct  float64 // Missing as a percentage of instances
	Distinct int     // number of distinct non-missing values
	Unique   int     // number of values occurring exactly once

	// Numeric-only moments (zero for nominal attributes).
	Min, Max, Mean, StdDev float64
}

// Summary aggregates dataset-level statistics, mirroring the header block of
// the paper's Figure 3 ("Num Instances 286, Num Attributes 10, ...").
type Summary struct {
	Relation      string
	NumInstances  int
	NumAttributes int
	NumContinuous int
	NumInt        int
	NumReal       int
	NumDiscrete   int
	MissingCells  int
	MissingPct    float64 // missing cells as a percentage of all cells
	PerAttribute  []AttrStats
}

// Summarize computes the Figure-3 statistics for a dataset.
func Summarize(d *Dataset) Summary {
	s := Summary{
		Relation:      d.Relation,
		NumInstances:  d.NumInstances(),
		NumAttributes: d.NumAttributes(),
	}
	totalCells := d.NumInstances() * d.NumAttributes()
	for col, a := range d.Attrs {
		st := AttrStats{Name: a.Name}
		counts := make(map[float64]int)
		var nonMissing, ints, reals int
		var sum, sumSq float64
		st.Min, st.Max = math.Inf(1), math.Inf(-1)
		for _, in := range d.Instances {
			v := in.Values[col]
			if IsMissing(v) {
				st.Missing++
				continue
			}
			nonMissing++
			counts[v]++
			if a.Kind == Numeric {
				if v == math.Trunc(v) {
					ints++
				} else {
					reals++
				}
				sum += v
				sumSq += v * v
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
			}
		}
		st.Distinct = len(counts)
		for _, c := range counts {
			if c == 1 {
				st.Unique++
			}
		}
		if d.NumInstances() > 0 {
			st.MissPct = 100 * float64(st.Missing) / float64(d.NumInstances())
		}
		switch a.Kind {
		case Nominal, String:
			if a.Kind == Nominal {
				st.Type = "Enum"
				s.NumDiscrete++
			} else {
				st.Type = "Str"
			}
			if nonMissing > 0 {
				st.EnumPct = 100
			}
		case Numeric:
			s.NumContinuous++
			if reals > 0 {
				st.Type = "Real"
				s.NumReal++
			} else {
				st.Type = "Int"
				s.NumInt++
			}
			if nonMissing > 0 {
				st.IntPct = 100 * float64(ints) / float64(nonMissing)
				st.RealPct = 100 * float64(reals) / float64(nonMissing)
				st.Mean = sum / float64(nonMissing)
				variance := sumSq/float64(nonMissing) - st.Mean*st.Mean
				if variance < 0 {
					variance = 0
				}
				st.StdDev = math.Sqrt(variance)
			}
		}
		if nonMissing == 0 {
			st.Min, st.Max = 0, 0
		}
		s.MissingCells += st.Missing
		s.PerAttribute = append(s.PerAttribute, st)
	}
	if totalCells > 0 {
		s.MissingPct = 100 * float64(s.MissingCells) / float64(totalCells)
	}
	return s
}

// Format renders the summary in the layout of the paper's Figure 3.
func (s Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Num Instances %d\n", s.NumInstances)
	fmt.Fprintf(&b, "Num Attributes %d\n", s.NumAttributes)
	fmt.Fprintf(&b, "Num Continuous %d Int %d Real %d\n", s.NumContinuous, s.NumInt, s.NumReal)
	fmt.Fprintf(&b, "Num Discrete %d\n", s.NumDiscrete)
	fmt.Fprintf(&b, "Missing values %d (%.1f%%)\n", s.MissingCells, s.MissingPct)
	fmt.Fprintf(&b, "%-3s %-12s %-5s %5s %4s %4s %8s %8s %8s\n",
		"#", "name", "type", "enum", "ints", "real", "missing", "distinct", "unique")
	for i, a := range s.PerAttribute {
		fmt.Fprintf(&b, "%-3d %-12s %-5s %4.0f%% %4.0f %4.0f %4d(%2.0f%%) %8d %8d\n",
			i+1, a.Name, a.Type, a.EnumPct, a.IntPct, a.RealPct, a.Missing, a.MissPct, a.Distinct, a.Unique)
	}
	return b.String()
}

// ValueCounts returns, for nominal attribute col, the weight of each label.
func (d *Dataset) ValueCounts(col int) []float64 {
	a := d.Attrs[col]
	counts := make([]float64, a.NumValues())
	for _, in := range d.Instances {
		v := in.Values[col]
		if IsMissing(v) {
			continue
		}
		counts[int(v)] += in.Weight
	}
	return counts
}

// NumericColumn extracts the non-missing values of numeric attribute col.
func (d *Dataset) NumericColumn(col int) []float64 {
	out := make([]float64, 0, len(d.Instances))
	for _, in := range d.Instances {
		v := in.Values[col]
		if !IsMissing(v) {
			out = append(out, v)
		}
	}
	return out
}

// Entropy returns the Shannon entropy (bits) of the class distribution.
func Entropy(counts []float64) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// SortByAttribute stably sorts the instances by the value of numeric column
// col, missing values last.
func (d *Dataset) SortByAttribute(col int) {
	sort.SliceStable(d.Instances, func(i, j int) bool {
		a, b := d.Instances[i].Values[col], d.Instances[j].Values[col]
		am, bm := IsMissing(a), IsMissing(b)
		switch {
		case am && bm:
			return false
		case am:
			return false
		case bm:
			return true
		default:
			return a < b
		}
	})
}
