package dataset

import (
	"fmt"
	"math/rand"
)

// View is a zero-copy, read-only row selection over a parent Dataset: an
// index slice plus a pointer to the parent, sharing its schema and
// Instance storage. Folding, bootstrap sampling and train/test assembly
// build Views instead of copying instance slices, so a k-fold
// cross-validation touches k index slices rather than k near-full
// copies of the data. Call Materialize to obtain a *Dataset (a shallow
// wrapper re-using the parent's Instance pointers) wherever an API
// still wants one.
type View struct {
	parent *Dataset
	rows   []int
}

// NewView returns a view of d selecting the given parent row indices.
// The slice is retained, not copied.
func NewView(d *Dataset, rows []int) *View {
	return &View{parent: d, rows: rows}
}

// All returns a view covering every row of d in order.
func All(d *Dataset) *View {
	rows := make([]int, len(d.Instances))
	for i := range rows {
		rows[i] = i
	}
	return &View{parent: d, rows: rows}
}

// Parent returns the dataset the view selects from.
func (v *View) Parent() *Dataset { return v.parent }

// Rows returns the selected parent row indices (not a copy).
func (v *View) Rows() []int { return v.rows }

// NumInstances returns the number of selected rows.
func (v *View) NumInstances() int { return len(v.rows) }

// Instance returns the i-th selected instance.
func (v *View) Instance(i int) *Instance { return v.parent.Instances[v.rows[i]] }

// Materialize wraps the selection as a *Dataset sharing the parent's
// schema and Instance pointers — only the []*Instance header is
// allocated, never the values.
func (v *View) Materialize() *Dataset {
	ins := make([]*Instance, len(v.rows))
	for i, r := range v.rows {
		ins[i] = v.parent.Instances[r]
	}
	return v.parent.ShallowWith(ins)
}

// FoldsView returns k cross-validation folds as views: folds[i] selects
// the held-out test rows of fold i. When the class attribute is nominal
// the folds are stratified. It consumes rng identically to the
// deprecated Folds, so a given (dataset, k, seed) yields the same fold
// membership through either API.
func FoldsView(d *Dataset, k int, rng *rand.Rand) ([]*View, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 folds, got %d", k)
	}
	if k > d.NumInstances() {
		return nil, fmt.Errorf("dataset: %d folds exceed %d instances", k, d.NumInstances())
	}
	ordered := make([]int, 0, len(d.Instances))
	ca := d.ClassAttribute()
	if ca != nil && ca.IsNominal() {
		// Round-robin by class for stratification.
		byClass := make([][]int, ca.NumValues()+1)
		for i, in := range d.Instances {
			v := in.Values[d.ClassIndex]
			if IsMissing(v) {
				byClass[ca.NumValues()] = append(byClass[ca.NumValues()], i)
			} else {
				byClass[int(v)] = append(byClass[int(v)], i)
			}
		}
		for _, bucket := range byClass {
			rng.Shuffle(len(bucket), func(i, j int) { bucket[i], bucket[j] = bucket[j], bucket[i] })
			ordered = append(ordered, bucket...)
		}
	} else {
		for i := range d.Instances {
			ordered = append(ordered, i)
		}
		rng.Shuffle(len(ordered), func(i, j int) { ordered[i], ordered[j] = ordered[j], ordered[i] })
	}
	rows := make([][]int, k)
	for i := range rows {
		rows[i] = make([]int, 0, len(ordered)/k+1)
	}
	for i, r := range ordered {
		rows[i%k] = append(rows[i%k], r)
	}
	folds := make([]*View, k)
	for i := range folds {
		folds[i] = &View{parent: d, rows: rows[i]}
	}
	return folds, nil
}

// TrainTestViewForFold assembles the train/test views for fold i: test
// is folds[i], train the concatenation of every other fold.
func TrainTestViewForFold(d *Dataset, folds []*View, i int) (train, test *View) {
	n := 0
	for j, f := range folds {
		if j != i {
			n += len(f.rows)
		}
	}
	trRows := make([]int, 0, n)
	for j, f := range folds {
		if j != i {
			trRows = append(trRows, f.rows...)
		}
	}
	return &View{parent: d, rows: trRows}, folds[i]
}

// ResampleView returns a bootstrap sample of d with n rows drawn with
// replacement using rng (bagging substrate), as a view.
func ResampleView(d *Dataset, n int, rng *rand.Rand) *View {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = rng.Intn(len(d.Instances))
	}
	return &View{parent: d, rows: rows}
}
