package dataset

import "fmt"

// Columnar (struct-of-arrays) storage. A Dataset can expose its cells as
// one contiguous []float64 per attribute: cols[j][i] is instance i's
// value for attribute j, with the usual encoding (numeric cells hold the
// measurement, nominal/string cells the value index, missing cells NaN).
// The scoring and clustering hot loops iterate these slices instead of
// chasing []*Instance pointers, and the dmb1 wire codec (internal/wire)
// reads and writes them directly.
//
// Datasets built row-first (ARFF parsing, AddRow) materialise the column
// mirror lazily on the first Columns/Column call and cache it; any Add
// drops the cache. Code that writes Instance.Values cells in place after
// columns were handed out must call InvalidateColumns. Datasets built
// column-first (FromColumns, the dmb1 decoder) carry the columns as the
// authoritative backing from birth, with the Instances row view carved
// out of a single slab so the legacy row API keeps working.

// Columns returns the dataset's column-major backing, one contiguous
// slice per attribute. The result is cached; callers must treat it as
// read-only unless they own the dataset exclusively.
func (d *Dataset) Columns() [][]float64 {
	if d.cols != nil && d.colsRows == len(d.Instances) {
		return d.cols
	}
	n, m := len(d.Instances), len(d.Attrs)
	slab := make([]float64, n*m)
	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = slab[j*n : (j+1)*n : (j+1)*n]
	}
	for i, in := range d.Instances {
		for j, v := range in.Values {
			cols[j][i] = v
		}
	}
	d.cols = cols
	d.colsRows = n
	return cols
}

// Column returns attribute j's contiguous value slice (see Columns).
func (d *Dataset) Column(j int) []float64 { return d.Columns()[j] }

// HasColumns reports whether a current column mirror exists without
// building one — true for column-first datasets and for row-first
// datasets whose mirror is cached and not stale.
func (d *Dataset) HasColumns() bool {
	return d.cols != nil && d.colsRows == len(d.Instances)
}

// InvalidateColumns drops the cached column mirror. Call it after
// writing Instance.Values cells in place (filters do); the next Columns
// call rebuilds the mirror from the rows.
func (d *Dataset) InvalidateColumns() {
	d.cols = nil
	d.colsRows = 0
}

// FromColumns builds a dataset directly from column-major storage:
// cols[j] holds attribute j's values for every row. The slices are
// retained as the dataset's columnar backing — no copy — and the
// Instances row view is carved from one freshly allocated slab so the
// row API stays available. weights may be nil (unit weights). Nominal
// and string cells are validated the way Add validates them: a non-
// integral or out-of-range value index is an error, which is what turns
// a corrupt wire payload into a caller fault instead of a panic deep in
// a scoring loop.
func FromColumns(relation string, attrs []*Attribute, classIndex int, cols [][]float64, weights []float64) (*Dataset, error) {
	if len(cols) != len(attrs) {
		return nil, fmt.Errorf("dataset: %d columns for %d attributes", len(cols), len(attrs))
	}
	if classIndex < -1 || classIndex >= len(attrs) {
		return nil, fmt.Errorf("dataset: class index %d out of range", classIndex)
	}
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	for j, col := range cols {
		if len(col) != rows {
			return nil, fmt.Errorf("dataset: column %q has %d rows, column %q has %d",
				attrs[j].Name, len(col), attrs[0].Name, rows)
		}
		a := attrs[j]
		if a.Kind == Numeric {
			continue
		}
		for i, v := range col {
			if IsMissing(v) {
				continue
			}
			idx := int(v)
			if float64(idx) != v || idx < 0 || idx >= a.NumValues() {
				return nil, fmt.Errorf("dataset: row %d: invalid index %v for attribute %q", i, v, a.Name)
			}
		}
	}
	if weights != nil && len(weights) != rows {
		return nil, fmt.Errorf("dataset: %d weights for %d rows", len(weights), rows)
	}
	d := New(relation, attrs...)
	d.ClassIndex = classIndex
	// One slab for every row view; each Instance aliases its n-th stripe.
	m := len(attrs)
	slab := make([]float64, rows*m)
	d.Instances = make([]*Instance, rows)
	for i := 0; i < rows; i++ {
		vals := slab[i*m : (i+1)*m : (i+1)*m]
		for j := 0; j < m; j++ {
			vals[j] = cols[j][i]
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		d.Instances[i] = &Instance{Values: vals, Weight: w}
	}
	d.cols = cols
	d.colsRows = rows
	return d, nil
}

// ColumnsCopy returns a deep copy of the column mirror, every attribute's
// slice carved from one fresh slab. It is the starting point for
// shape-preserving columnar filters: transform the copy in place, then
// hand it to FromColumns without ever touching the input's backing.
func (d *Dataset) ColumnsCopy() [][]float64 {
	src := d.Columns()
	n, m := len(d.Instances), len(d.Attrs)
	slab := make([]float64, n*m)
	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = slab[j*n : (j+1)*n : (j+1)*n]
		copy(cols[j], src[j])
	}
	return cols
}

// WeightsSlice returns every instance weight as one slice (a copy).
func (d *Dataset) WeightsSlice() []float64 {
	out := make([]float64, len(d.Instances))
	for i, in := range d.Instances {
		out[i] = in.Weight
	}
	return out
}
