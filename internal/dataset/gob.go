package dataset

import (
	"bytes"
	"encoding/gob"
)

// attributeWire is the exported mirror of Attribute for gob encoding; model
// snapshots and streamed schemas travel through it.
type attributeWire struct {
	Name   string
	Kind   Kind
	Values []string
}

// GobEncode implements gob.GobEncoder.
func (a *Attribute) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(attributeWire{Name: a.Name, Kind: a.Kind, Values: a.values})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (a *Attribute) GobDecode(b []byte) error {
	var w attributeWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	a.Name = w.Name
	a.Kind = w.Kind
	a.values = nil
	a.index = nil
	for _, v := range w.Values {
		a.addValue(v)
	}
	return nil
}
