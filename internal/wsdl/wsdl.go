// Package wsdl generates and parses WSDL 1.1 service descriptions. The
// toolkit imports a Web Service "by providing its WSDL interface", after
// which "Triana creates a tool for each operation provided by the service"
// (§4); Parse + Description.Operations reproduce exactly that flow.
package wsdl

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Part is one named input or output of an operation. Type is an XSD simple
// type name ("string", "base64Binary", ...).
type Part struct {
	Name string
	Type string
}

// Operation describes one service operation.
type Operation struct {
	Name    string
	Doc     string
	Inputs  []Part
	Outputs []Part
}

// Description is the toolkit's view of a deployed service.
type Description struct {
	Service  string
	Endpoint string // the location URL in the binding
	Ops      []Operation
}

// Operations returns the operation names, sorted.
func (d *Description) Operations() []string {
	out := make([]string, 0, len(d.Ops))
	for _, op := range d.Ops {
		out = append(out, op.Name)
	}
	sort.Strings(out)
	return out
}

// Operation returns the named operation, or nil.
func (d *Description) Operation(name string) *Operation {
	for i := range d.Ops {
		if d.Ops[i].Name == name {
			return &d.Ops[i]
		}
	}
	return nil
}

// Generate renders the description as a WSDL 1.1 document (rpc-style
// messages with string parts, one port).
func Generate(d *Description) ([]byte, error) {
	if d.Service == "" {
		return nil, fmt.Errorf("wsdl: description has no service name")
	}
	var b bytes.Buffer
	b.WriteString(xml.Header)
	tns := "urn:" + d.Service
	fmt.Fprintf(&b, `<definitions name=%q targetNamespace=%q xmlns:tns=%q `+
		`xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/" `+
		`xmlns:xsd="http://www.w3.org/2001/XMLSchema" `+
		`xmlns="http://schemas.xmlsoap.org/wsdl/">`+"\n", d.Service, tns, tns)
	// Messages.
	for _, op := range d.Ops {
		fmt.Fprintf(&b, "  <message name=%q>\n", op.Name+"Request")
		for _, p := range op.Inputs {
			fmt.Fprintf(&b, "    <part name=%q type=\"xsd:%s\"/>\n", p.Name, orString(p.Type))
		}
		b.WriteString("  </message>\n")
		fmt.Fprintf(&b, "  <message name=%q>\n", op.Name+"Response")
		for _, p := range op.Outputs {
			fmt.Fprintf(&b, "    <part name=%q type=\"xsd:%s\"/>\n", p.Name, orString(p.Type))
		}
		b.WriteString("  </message>\n")
	}
	// PortType.
	fmt.Fprintf(&b, "  <portType name=%q>\n", d.Service+"PortType")
	for _, op := range d.Ops {
		fmt.Fprintf(&b, "    <operation name=%q>\n", op.Name)
		if op.Doc != "" {
			fmt.Fprintf(&b, "      <documentation>%s</documentation>\n", escapeXML(op.Doc))
		}
		fmt.Fprintf(&b, "      <input message=\"tns:%sRequest\"/>\n", op.Name)
		fmt.Fprintf(&b, "      <output message=\"tns:%sResponse\"/>\n", op.Name)
		b.WriteString("    </operation>\n")
	}
	b.WriteString("  </portType>\n")
	// Binding.
	fmt.Fprintf(&b, "  <binding name=%q type=\"tns:%sPortType\">\n", d.Service+"Binding", d.Service)
	b.WriteString("    <soap:binding style=\"document\" transport=\"http://schemas.xmlsoap.org/soap/http\"/>\n")
	for _, op := range d.Ops {
		fmt.Fprintf(&b, "    <operation name=%q><soap:operation soapAction=%q/></operation>\n",
			op.Name, op.Name)
	}
	b.WriteString("  </binding>\n")
	// Service + port.
	fmt.Fprintf(&b, "  <service name=%q>\n", d.Service)
	fmt.Fprintf(&b, "    <port name=%q binding=\"tns:%sBinding\">\n", d.Service+"Port", d.Service)
	fmt.Fprintf(&b, "      <soap:address location=%q/>\n", d.Endpoint)
	b.WriteString("    </port>\n  </service>\n</definitions>\n")
	return b.Bytes(), nil
}

func orString(t string) string {
	if t == "" {
		return "string"
	}
	return t
}

func escapeXML(s string) string {
	var b bytes.Buffer
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}

// Parse reads a WSDL document back into a Description. It understands the
// subset Generate emits (which matches what the toolkit's import needs:
// operation names, part names/types, documentation and the port address).
func Parse(r io.Reader) (*Description, error) {
	type xmlPart struct {
		Name string `xml:"name,attr"`
		Type string `xml:"type,attr"`
	}
	type xmlMessage struct {
		Name  string    `xml:"name,attr"`
		Parts []xmlPart `xml:"part"`
	}
	type xmlIO struct {
		Message string `xml:"message,attr"`
	}
	type xmlOperation struct {
		Name   string `xml:"name,attr"`
		Doc    string `xml:"documentation"`
		Input  xmlIO  `xml:"input"`
		Output xmlIO  `xml:"output"`
	}
	type xmlPortType struct {
		Name string         `xml:"name,attr"`
		Ops  []xmlOperation `xml:"operation"`
	}
	type xmlAddress struct {
		Location string `xml:"location,attr"`
	}
	type xmlPort struct {
		Address xmlAddress `xml:"address"`
	}
	type xmlService struct {
		Name  string    `xml:"name,attr"`
		Ports []xmlPort `xml:"port"`
	}
	type xmlDefinitions struct {
		Name      string        `xml:"name,attr"`
		Messages  []xmlMessage  `xml:"message"`
		PortTypes []xmlPortType `xml:"portType"`
		Services  []xmlService  `xml:"service"`
	}
	var defs xmlDefinitions
	if err := xml.NewDecoder(r).Decode(&defs); err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	if len(defs.PortTypes) == 0 {
		return nil, fmt.Errorf("wsdl: document has no portType")
	}
	msgs := map[string][]Part{}
	for _, m := range defs.Messages {
		var parts []Part
		for _, p := range m.Parts {
			t := p.Type
			if i := strings.IndexByte(t, ':'); i >= 0 {
				t = t[i+1:]
			}
			parts = append(parts, Part{Name: p.Name, Type: t})
		}
		msgs[m.Name] = parts
	}
	lookup := func(ref string) []Part {
		if i := strings.IndexByte(ref, ':'); i >= 0 {
			ref = ref[i+1:]
		}
		return msgs[ref]
	}
	d := &Description{Service: defs.Name}
	if len(defs.Services) > 0 {
		if d.Service == "" {
			d.Service = defs.Services[0].Name
		}
		if len(defs.Services[0].Ports) > 0 {
			d.Endpoint = defs.Services[0].Ports[0].Address.Location
		}
	}
	for _, op := range defs.PortTypes[0].Ops {
		d.Ops = append(d.Ops, Operation{
			Name:    op.Name,
			Doc:     strings.TrimSpace(op.Doc),
			Inputs:  lookup(op.Input.Message),
			Outputs: lookup(op.Output.Message),
		})
	}
	return d, nil
}

// ParseBytes is a convenience wrapper over Parse.
func ParseBytes(b []byte) (*Description, error) {
	return Parse(bytes.NewReader(b))
}
