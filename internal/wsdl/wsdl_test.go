package wsdl

import (
	"strings"
	"testing"
)

func sampleDesc() *Description {
	return &Description{
		Service:  "Classifier",
		Endpoint: "http://example.org/services/Classifier",
		Ops: []Operation{
			{
				Name:    "getClassifiers",
				Doc:     "List available classifiers.",
				Outputs: []Part{{Name: "classifiers"}},
			},
			{
				Name:   "classifyInstance",
				Doc:    "Train & evaluate.",
				Inputs: []Part{{Name: "dataset"}, {Name: "classifier"}, {Name: "options"}, {Name: "attribute"}},
				Outputs: []Part{{Name: "model"}, {Name: "evaluation"},
					{Name: "image", Type: "base64Binary"}},
			},
		},
	}
}

func TestGenerateWellFormed(t *testing.T) {
	doc, err := Generate(sampleDesc())
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	for _, want := range []string{
		"<definitions", "targetNamespace=\"urn:Classifier\"",
		"<message name=\"classifyInstanceRequest\">",
		"<part name=\"dataset\" type=\"xsd:string\"/>",
		"<part name=\"image\" type=\"xsd:base64Binary\"/>",
		"portType", "soap:address location=\"http://example.org/services/Classifier\"",
		"<documentation>List available classifiers.</documentation>",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("WSDL lacks %q:\n%s", want, s)
		}
	}
}

func TestGenerateRequiresName(t *testing.T) {
	if _, err := Generate(&Description{}); err == nil {
		t.Fatal("anonymous service accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	doc, err := Generate(sampleDesc())
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseBytes(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Service != "Classifier" {
		t.Fatalf("service = %q", d.Service)
	}
	if d.Endpoint != "http://example.org/services/Classifier" {
		t.Fatalf("endpoint = %q", d.Endpoint)
	}
	if got := d.Operations(); len(got) != 2 || got[0] != "classifyInstance" {
		t.Fatalf("operations = %v", got)
	}
	op := d.Operation("classifyInstance")
	if op == nil {
		t.Fatal("classifyInstance missing")
	}
	if len(op.Inputs) != 4 || op.Inputs[0].Name != "dataset" {
		t.Fatalf("inputs = %+v", op.Inputs)
	}
	if len(op.Outputs) != 3 || op.Outputs[2].Type != "base64Binary" {
		t.Fatalf("outputs = %+v", op.Outputs)
	}
	if op.Doc != "Train & evaluate." {
		t.Fatalf("doc = %q", op.Doc)
	}
	if d.Operation("nope") != nil {
		t.Fatal("phantom operation")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseBytes([]byte("not xml")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseBytes([]byte("<definitions></definitions>")); err == nil {
		t.Fatal("portType-less document accepted")
	}
}
