#!/bin/sh
# scripts/smoke.sh — end-to-end smoke in two phases. Phase 1 covers the
# observability layer: start a real dmserver, probe /healthz and /metrics,
# then run a small dmexp batch against the registry and check that ONE
# trace ID crosses the client log, the server log and the journal.
# Phase 2 covers resilience: a standalone dmregistry, two dmservers
# publishing into it — one answering every SOAP call with an injected
# fault — and a batch that must finish on the healthy replica with the
# failover visible in the client metrics. Run from the repo root.
set -eu

WORK=$(mktemp -d)
SERVER_PID=""
REG_PID=""
GOOD_PID=""
BAD_PID=""
cleanup() {
	for pid in "$SERVER_PID" "$REG_PID" "$GOOD_PID" "$BAD_PID"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/dmserver" ./cmd/dmserver
go build -o "$WORK/dmexp" ./cmd/dmexp
go build -o "$WORK/dmregistry" ./cmd/dmregistry

"$WORK/dmserver" -addr 127.0.0.1:0 -log-level info >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

# The server prints its ephemeral base URL; wait for it.
BASE=""
i=0
while [ $i -lt 50 ]; do
	BASE=$(sed -n 's|^dmserver listening on \(http://[^ ]*\).*|\1|p' "$WORK/server.log" | head -1)
	[ -n "$BASE" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$BASE" ]; then
	echo "smoke: dmserver did not start" >&2
	cat "$WORK/server.log" >&2
	exit 1
fi

# /healthz must answer 200 ok.
code=$(curl -fsS -o "$WORK/health.json" -w '%{http_code}' "$BASE/healthz")
if [ "$code" != 200 ] || ! grep -q '"ok"' "$WORK/health.json"; then
	echo "smoke: /healthz -> $code: $(cat "$WORK/health.json")" >&2
	exit 1
fi

cat >"$WORK/spec.json" <<'EOF'
{
  "name": "smoke",
  "folds": 3,
  "datasets": [{"name": "breast-cancer", "builtin": "breast-cancer"}],
  "algorithms": [{"algorithm": "J48"}]
}
EOF

# Registry-discovered remote dispatch with trace collection; client-side
# structured logs land on stderr.
"$WORK/dmexp" run -spec "$WORK/spec.json" -journal "$WORK/batch.jsonl" \
	-registry "$BASE/registry" -trace -log-level info \
	>"$WORK/dmexp.out" 2>"$WORK/client.log"

# The journal records the batch's trace ID; exactly one ID must cross every
# layer: journal, client log, server log, and the printed trace tree.
TRACE=$(sed -n 's/.*"traceId":"\([^"]*\)".*/\1/p' "$WORK/batch.jsonl" | sort -u)
if [ -z "$TRACE" ]; then
	echo "smoke: journal carries no traceId" >&2
	cat "$WORK/batch.jsonl" >&2
	exit 1
fi
if [ "$(printf '%s\n' "$TRACE" | wc -l)" -ne 1 ]; then
	echo "smoke: journal has several trace IDs:" >&2
	printf '%s\n' "$TRACE" >&2
	exit 1
fi
for probe in "trace=$TRACE:$WORK/client.log" "trace=$TRACE:$WORK/server.log" "trace $TRACE:$WORK/client.log"; do
	pat=${probe%%:*}
	file=${probe#*:}
	if ! grep -q "$pat" "$file"; then
		echo "smoke: $pat absent from $file" >&2
		tail -20 "$file" >&2
		exit 1
	fi
done

# /metrics must now carry non-zero soap and harness counters.
curl -fsS "$BASE/metrics" >"$WORK/metrics.json"
if [ ! -s "$WORK/metrics.json" ]; then
	echo "smoke: /metrics returned an empty body" >&2
	exit 1
fi
for want in soap_server_requests_total harness_cache_; do
	if ! grep -q "\"$want" "$WORK/metrics.json"; then
		echo "smoke: no $want metric at /metrics" >&2
		cat "$WORK/metrics.json" >&2
		exit 1
	fi
done

echo "smoke: phase 1 ok (base=$BASE trace=$TRACE)"

# ---------------------------------------------------------------------------
# Phase 2: chaos/failover. A shared dmregistry, two dmservers publishing
# into it with heartbeats, one of them injecting a soap:Server fault into
# EVERY service call. The batch must still complete every job — with a
# hair-trigger breaker (-breaker-failures 1) the faulty replica is ejected
# after one failure — and the evidence must land in the metrics snapshot.
"$WORK/dmregistry" -addr 127.0.0.1:0 -ttl 30s >"$WORK/registry.log" 2>&1 &
REG_PID=$!
REG=""
i=0
while [ $i -lt 50 ]; do
	REG=$(sed -n 's|^dmregistry listening on \(http://[^ ]*\).*|\1|p' "$WORK/registry.log" | head -1)
	[ -n "$REG" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$REG" ]; then
	echo "smoke: dmregistry did not start" >&2
	cat "$WORK/registry.log" >&2
	exit 1
fi

"$WORK/dmserver" -addr 127.0.0.1:0 -publish "$REG" -heartbeat 1s \
	>"$WORK/good.log" 2>&1 &
GOOD_PID=$!
"$WORK/dmserver" -addr 127.0.0.1:0 -publish "$REG" -heartbeat 1s \
	-chaos 'fault=1' >"$WORK/bad.log" 2>&1 &
BAD_PID=$!

# Both hosts publish the Classifier service under the same name; wait
# until the registry's inquiry lists two distinct endpoints for it.
i=0
while [ $i -lt 100 ]; do
	n=$(curl -fsS "$REG/inquiry?category=classifier" 2>/dev/null |
		grep -o '"endpoint"' | wc -l) || n=0
	[ "$n" -ge 2 ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ "$n" -lt 2 ]; then
	echo "smoke: registry lists $n classifier endpoint(s), want 2" >&2
	cat "$WORK/good.log" "$WORK/bad.log" >&2
	exit 1
fi

cat >"$WORK/chaos-spec.json" <<'EOF'
{
  "name": "smoke-chaos",
  "folds": 3,
  "datasets": [{"name": "weather", "builtin": "weather"}],
  "algorithms": [{"algorithm": "ZeroR"}, {"algorithm": "OneR"}]
}
EOF

"$WORK/dmexp" run -spec "$WORK/chaos-spec.json" -journal "$WORK/chaos.jsonl" \
	-registry "$REG" -breaker-failures 1 -retries 3 \
	-metrics-out "$WORK/chaos-metrics.json" \
	>"$WORK/chaos.out" 2>"$WORK/chaos.err" || {
	echo "smoke: chaos batch failed despite a healthy replica" >&2
	cat "$WORK/chaos.out" "$WORK/chaos.err" >&2
	exit 1
}
if grep -q '"status":"failed"' "$WORK/chaos.jsonl"; then
	echo "smoke: chaos journal records failed jobs" >&2
	cat "$WORK/chaos.jsonl" >&2
	exit 1
fi

# The failover must be visible: the chaotic endpoint's breaker opened and
# the pool ejected it at least once.
for want in resilience_breaker_opens_total resilience_endpoint_ejections_total; do
	if ! grep -Eq "\"$want\{[^\"]*\}\": *[1-9]" "$WORK/chaos-metrics.json"; then
		echo "smoke: no nonzero $want in the client metrics snapshot" >&2
		cat "$WORK/chaos-metrics.json" >&2
		exit 1
	fi
done

echo "smoke: phase 2 ok (registry=$REG, failover confirmed)"
echo "smoke: ok"
