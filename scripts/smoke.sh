#!/bin/sh
# scripts/smoke.sh — end-to-end smoke in nine phases. Phase 1 covers the
# observability layer: start a real dmserver, probe /healthz and /metrics,
# then run a small dmexp batch against the registry and check that ONE
# trace ID crosses the client log, the server log and the journal.
# Phase 2 covers resilience: a standalone dmregistry, two dmservers
# publishing into it — one answering every SOAP call with an injected
# fault — and a batch that must finish on the healthy replica with the
# failover visible in the client metrics. Phase 3 covers admission
# control: flood one dmserver at many times its -max-inflight, assert the
# overflow is shed as ServerBusy, the batch still completes via retries,
# the in-flight bound held, and SIGINT drains gracefully. Phase 4 covers
# the parallel kernels: a crossValidate call with parallelism=4 against
# the live phase-1 dmserver must finish under the client's propagated
# deadline and leave the kernel_ms metric on /metrics. Phase 5 covers the
# model store: two dmservers share a -store-dir behind a registry, a
# session trained on one replica is SIGKILLed away, and the next classify
# must resume warm on the survivor — snapshot restored from the store,
# zero retrains. Phase 6 covers batched binary scoring: a 1024-row dmb1
# payload through one Session classifyBatch call, with the decoded dmr1
# reply and the batch_rows_total / batch_decode_ms metrics asserted.
# Phase 7 covers replica churn + store GC: a ~30s dmsoak run — three
# dmservers sharing a store directory, a SIGKILL every 10s, background
# compaction enabled — must finish with zero failed requests, at least
# one replica kill survived, and a nonzero GC byte reclaim. Phase 8
# covers durable workflows: a journaled dmflow run trains a session on
# one replica, is SIGKILLed while the classify step waits out injected
# latency on a second replica, and the -resume re-run must finish by
# replaying the journaled train step — proven by the first replica's
# createSession counter standing still across the resume. Phase 9
# covers the chained binary pipeline: a 1024-row dmb1 block through a
# live filterBatch (Normalize) whose reply payload cables straight into
# clusterBatch — no ARFF between hops — with the DMC1 reply decoded by
# dminfo and the per-op batch_rows_total counters asserted.
# Run from the repo root.
set -eu

WORK=$(mktemp -d)
SERVER_PID=""
REG_PID=""
GOOD_PID=""
BAD_PID=""
FLOOD_PID=""
REG2_PID=""
REPA_PID=""
REPB_PID=""
WFA_PID=""
WFB_PID=""
DMFLOW_PID=""
cleanup() {
	for pid in "$SERVER_PID" "$REG_PID" "$GOOD_PID" "$BAD_PID" "$FLOOD_PID" "$REG2_PID" "$REPA_PID" "$REPB_PID" "$WFA_PID" "$WFB_PID" "$DMFLOW_PID"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/dmserver" ./cmd/dmserver
go build -o "$WORK/dmexp" ./cmd/dmexp
go build -o "$WORK/dmregistry" ./cmd/dmregistry

"$WORK/dmserver" -addr 127.0.0.1:0 -log-level info >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

# The server prints its ephemeral base URL; wait for it.
BASE=""
i=0
while [ $i -lt 50 ]; do
	BASE=$(sed -n 's|^dmserver listening on \(http://[^ ]*\).*|\1|p' "$WORK/server.log" | head -1)
	[ -n "$BASE" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$BASE" ]; then
	echo "smoke: dmserver did not start" >&2
	cat "$WORK/server.log" >&2
	exit 1
fi

# /healthz must answer 200 ok.
code=$(curl -fsS -o "$WORK/health.json" -w '%{http_code}' "$BASE/healthz")
if [ "$code" != 200 ] || ! grep -q '"ok"' "$WORK/health.json"; then
	echo "smoke: /healthz -> $code: $(cat "$WORK/health.json")" >&2
	exit 1
fi

cat >"$WORK/spec.json" <<'EOF'
{
  "name": "smoke",
  "folds": 3,
  "datasets": [{"name": "breast-cancer", "builtin": "breast-cancer"}],
  "algorithms": [{"algorithm": "J48"}]
}
EOF

# Registry-discovered remote dispatch with trace collection; client-side
# structured logs land on stderr.
"$WORK/dmexp" run -spec "$WORK/spec.json" -journal "$WORK/batch.jsonl" \
	-registry "$BASE/registry" -trace -log-level info \
	>"$WORK/dmexp.out" 2>"$WORK/client.log"

# The journal records the batch's trace ID; exactly one ID must cross every
# layer: journal, client log, server log, and the printed trace tree.
TRACE=$(sed -n 's/.*"traceId":"\([^"]*\)".*/\1/p' "$WORK/batch.jsonl" | sort -u)
if [ -z "$TRACE" ]; then
	echo "smoke: journal carries no traceId" >&2
	cat "$WORK/batch.jsonl" >&2
	exit 1
fi
if [ "$(printf '%s\n' "$TRACE" | wc -l)" -ne 1 ]; then
	echo "smoke: journal has several trace IDs:" >&2
	printf '%s\n' "$TRACE" >&2
	exit 1
fi
for probe in "trace=$TRACE:$WORK/client.log" "trace=$TRACE:$WORK/server.log" "trace $TRACE:$WORK/client.log"; do
	pat=${probe%%:*}
	file=${probe#*:}
	if ! grep -q "$pat" "$file"; then
		echo "smoke: $pat absent from $file" >&2
		tail -20 "$file" >&2
		exit 1
	fi
done

# /metrics must now carry non-zero soap and harness counters.
curl -fsS "$BASE/metrics" >"$WORK/metrics.json"
if [ ! -s "$WORK/metrics.json" ]; then
	echo "smoke: /metrics returned an empty body" >&2
	exit 1
fi
for want in soap_server_requests_total harness_cache_; do
	if ! grep -q "\"$want" "$WORK/metrics.json"; then
		echo "smoke: no $want metric at /metrics" >&2
		cat "$WORK/metrics.json" >&2
		exit 1
	fi
done

echo "smoke: phase 1 ok (base=$BASE trace=$TRACE)"

# ---------------------------------------------------------------------------
# Phase 2: chaos/failover. A shared dmregistry, two dmservers publishing
# into it with heartbeats, one of them injecting a soap:Server fault into
# EVERY service call. The batch must still complete every job — with a
# hair-trigger breaker (-breaker-failures 1) the faulty replica is ejected
# after one failure — and the evidence must land in the metrics snapshot.
"$WORK/dmregistry" -addr 127.0.0.1:0 -ttl 30s >"$WORK/registry.log" 2>&1 &
REG_PID=$!
REG=""
i=0
while [ $i -lt 50 ]; do
	REG=$(sed -n 's|^dmregistry listening on \(http://[^ ]*\).*|\1|p' "$WORK/registry.log" | head -1)
	[ -n "$REG" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$REG" ]; then
	echo "smoke: dmregistry did not start" >&2
	cat "$WORK/registry.log" >&2
	exit 1
fi

"$WORK/dmserver" -addr 127.0.0.1:0 -publish "$REG" -heartbeat 1s \
	>"$WORK/good.log" 2>&1 &
GOOD_PID=$!
"$WORK/dmserver" -addr 127.0.0.1:0 -publish "$REG" -heartbeat 1s \
	-chaos 'fault=1' >"$WORK/bad.log" 2>&1 &
BAD_PID=$!

# Both hosts publish the Classifier service under the same name; wait
# until the registry's inquiry lists two distinct endpoints for it.
i=0
while [ $i -lt 100 ]; do
	n=$(curl -fsS "$REG/inquiry?category=classifier" 2>/dev/null |
		grep -o '"endpoint"' | wc -l) || n=0
	[ "$n" -ge 2 ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ "$n" -lt 2 ]; then
	echo "smoke: registry lists $n classifier endpoint(s), want 2" >&2
	cat "$WORK/good.log" "$WORK/bad.log" >&2
	exit 1
fi

cat >"$WORK/chaos-spec.json" <<'EOF'
{
  "name": "smoke-chaos",
  "folds": 3,
  "datasets": [{"name": "weather", "builtin": "weather"}],
  "algorithms": [{"algorithm": "ZeroR"}, {"algorithm": "OneR"}]
}
EOF

"$WORK/dmexp" run -spec "$WORK/chaos-spec.json" -journal "$WORK/chaos.jsonl" \
	-registry "$REG" -breaker-failures 1 -retries 3 \
	-metrics-out "$WORK/chaos-metrics.json" \
	>"$WORK/chaos.out" 2>"$WORK/chaos.err" || {
	echo "smoke: chaos batch failed despite a healthy replica" >&2
	cat "$WORK/chaos.out" "$WORK/chaos.err" >&2
	exit 1
}
if grep -q '"status":"failed"' "$WORK/chaos.jsonl"; then
	echo "smoke: chaos journal records failed jobs" >&2
	cat "$WORK/chaos.jsonl" >&2
	exit 1
fi

# The failover must be visible: the chaotic endpoint's breaker opened and
# the pool ejected it at least once.
for want in resilience_breaker_opens_total resilience_endpoint_ejections_total; do
	if ! grep -Eq "\"$want\{[^\"]*\}\": *[1-9]" "$WORK/chaos-metrics.json"; then
		echo "smoke: no nonzero $want in the client metrics snapshot" >&2
		cat "$WORK/chaos-metrics.json" >&2
		exit 1
	fi
done

echo "smoke: phase 2 ok (registry=$REG, failover confirmed)"

# ---------------------------------------------------------------------------
# Phase 3: admission control under flood. One dmserver with only 2
# execution slots and 2 queue seats, 12 dmexp workers pushing 12 jobs at
# it — a sustained ~10x overload at the burst. Chaos latency stretches
# each service call to 200ms so the burst actually collides (the real
# handlers answer in ~1ms, too fast to ever fill 2 slots). The overflow
# must be shed as soap:Server.Busy (visible in BOTH the server's shed
# counter and the client's fault-class counter), the in-flight bound
# must hold at its peak, and the batch must still complete every job
# through retries.
"$WORK/dmserver" -addr 127.0.0.1:0 -max-inflight 2 -queue 2 \
	-chaos 'latency=200ms' -log-level info >"$WORK/flood.log" 2>&1 &
FLOOD_PID=$!
FLOOD=""
i=0
while [ $i -lt 50 ]; do
	FLOOD=$(sed -n 's|^dmserver listening on \(http://[^ ]*\).*|\1|p' "$WORK/flood.log" | head -1)
	[ -n "$FLOOD" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$FLOOD" ]; then
	echo "smoke: flood dmserver did not start" >&2
	cat "$WORK/flood.log" >&2
	exit 1
fi

cat >"$WORK/flood-spec.json" <<'EOF'
{
  "name": "smoke-flood",
  "folds": 3,
  "datasets": [{"name": "weather", "builtin": "weather"}, {"name": "iris", "builtin": "iris"}],
  "algorithms": [{"algorithm": "ZeroR"}, {"algorithm": "OneR"}, {"algorithm": "DecisionStump"},
                 {"algorithm": "NaiveBayes"}, {"algorithm": "J48"}, {"algorithm": "IBk"}]
}
EOF

"$WORK/dmexp" run -spec "$WORK/flood-spec.json" -journal "$WORK/flood.jsonl" \
	-endpoints "$FLOOD/services/Classifier" -workers 12 -retries 8 \
	-metrics-out "$WORK/flood-metrics.json" \
	>"$WORK/flood.out" 2>"$WORK/flood.err" || {
	echo "smoke: flood batch failed despite retries" >&2
	cat "$WORK/flood.out" "$WORK/flood.err" >&2
	exit 1
}
if grep -q '"status":"failed"' "$WORK/flood.jsonl"; then
	echo "smoke: flood journal records failed jobs" >&2
	cat "$WORK/flood.jsonl" >&2
	exit 1
fi

# The server must have shed (the flood exceeded its capacity)...
curl -fsS "$FLOOD/metrics" >"$WORK/flood-server-metrics.json"
if ! grep -Eq '"admission_shed_total\{[^"]*\}": *[1-9]' "$WORK/flood-server-metrics.json"; then
	echo "smoke: flood produced no admission_shed_total on the server" >&2
	cat "$WORK/flood-server-metrics.json" >&2
	exit 1
fi
# ...while never exceeding its in-flight bound, even at the peak.
peak=$(sed -n 's/.*"admission_inflight_peak": *\([0-9]*\).*/\1/p' "$WORK/flood-server-metrics.json" | head -1)
if [ -z "$peak" ] || [ "$peak" -lt 1 ] || [ "$peak" -gt 2 ]; then
	echo "smoke: admission_inflight_peak=$peak, want within [1,2]" >&2
	cat "$WORK/flood-server-metrics.json" >&2
	exit 1
fi
# The client must have seen the sheds as ServerBusy faults (and retried
# through them — the journal check above proves the retries worked).
if ! grep -Eq '"soap_client_faults_total\{[^"]*soap:Server\.Busy[^"]*\}": *[1-9]' "$WORK/flood-metrics.json"; then
	echo "smoke: no soap:Server.Busy fault class in the client metrics" >&2
	cat "$WORK/flood-metrics.json" >&2
	exit 1
fi

# SIGINT must drain gracefully: withdraw, finish, announce, exit.
kill -INT "$FLOOD_PID"
i=0
while [ $i -lt 100 ]; do
	grep -q "dmserver: drained, bye" "$WORK/flood.log" && break
	i=$((i + 1))
	sleep 0.1
done
if ! grep -q "dmserver: draining (grace" "$WORK/flood.log" ||
	! grep -q "dmserver: drained, bye" "$WORK/flood.log"; then
	echo "smoke: flood dmserver did not drain cleanly on SIGINT" >&2
	tail -20 "$WORK/flood.log" >&2
	exit 1
fi
wait "$FLOOD_PID" 2>/dev/null || true
FLOOD_PID=""

echo "smoke: phase 3 ok (flood=$FLOOD, peak=$peak, sheds confirmed)"

# ---------------------------------------------------------------------------
# Phase 4: parallel cross-validation over live SOAP. The Classifier
# service's crossValidate operation fans folds across workers; the call
# runs under dmclient's 30s timeout (propagated to the server as
# X-DM-Deadline, which cancels in-flight training if it expires), must
# report a sane accuracy, and must leave the parallel-kernel metrics on
# the server's /metrics endpoint.
go build -o "$WORK/dmclient" ./cmd/dmclient
go build -o "$WORK/dminfo" ./cmd/dminfo
"$WORK/dminfo" -embedded breast-cancer -arff >"$WORK/breast.arff"

"$WORK/dmclient" -url "$BASE/services/Classifier" -op crossValidate \
	-timeout 30s -file "dataset=$WORK/breast.arff" \
	-part classifier=J48 -part attribute=Class \
	-part folds=5 -part parallelism=4 >"$WORK/cv.out" 2>"$WORK/cv.err" || {
	echo "smoke: parallel crossValidate failed under the 30s deadline" >&2
	cat "$WORK/cv.out" "$WORK/cv.err" >&2
	exit 1
}
acc=$(sed -n '/^=== accuracy ===$/{n;p;}' "$WORK/cv.out")
case "$acc" in
0.[0-9]* | 1.0*) ;;
*)
	echo "smoke: crossValidate returned accuracy '$acc'" >&2
	cat "$WORK/cv.out" >&2
	exit 1
	;;
esac

curl -fsS "$BASE/metrics" >"$WORK/cv-metrics.json"
for want in "kernel_ms{kernel=crossvalidate}" "kernel_runs_total{kernel=crossvalidate}"; do
	if ! grep -qF "\"$want\"" "$WORK/cv-metrics.json"; then
		echo "smoke: no $want metric after the parallel crossValidate" >&2
		cat "$WORK/cv-metrics.json" >&2
		exit 1
	fi
done

echo "smoke: phase 4 ok (accuracy=$acc, parallel fold kernel observed)"

# ---------------------------------------------------------------------------
# Phase 5: model store failover. Two dmserver replicas share one
# -store-dir and publish into a fresh registry. A session is created
# (trained) on replica A; A is then SIGKILLed — no drain, no goodbye —
# and the same session token must classify on replica B: restored from
# the shared store (store_hits_total > 0 on B) without a single retrain
# (no harness build on B).
# The phase-2 servers are done; stop them so they don't pollute lookups.
kill "$GOOD_PID" "$BAD_PID" 2>/dev/null || true
GOOD_PID=""
BAD_PID=""

"$WORK/dmregistry" -addr 127.0.0.1:0 -ttl 30s >"$WORK/registry2.log" 2>&1 &
REG2_PID=$!
REG2=""
i=0
while [ $i -lt 50 ]; do
	REG2=$(sed -n 's|^dmregistry listening on \(http://[^ ]*\).*|\1|p' "$WORK/registry2.log" | head -1)
	[ -n "$REG2" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$REG2" ]; then
	echo "smoke: phase-5 dmregistry did not start" >&2
	cat "$WORK/registry2.log" >&2
	exit 1
fi

STOREDIR="$WORK/modelstore"
"$WORK/dmserver" -addr 127.0.0.1:0 -store-dir "$STOREDIR" -publish "$REG2" \
	-heartbeat 1s >"$WORK/repA.log" 2>&1 &
REPA_PID=$!
"$WORK/dmserver" -addr 127.0.0.1:0 -store-dir "$STOREDIR" -publish "$REG2" \
	-heartbeat 1s >"$WORK/repB.log" 2>&1 &
REPB_PID=$!
REPA=""
REPB=""
i=0
while [ $i -lt 100 ]; do
	REPA=$(sed -n 's|^dmserver listening on \(http://[^ ]*\).*|\1|p' "$WORK/repA.log" | head -1)
	REPB=$(sed -n 's|^dmserver listening on \(http://[^ ]*\).*|\1|p' "$WORK/repB.log" | head -1)
	[ -n "$REPA" ] && [ -n "$REPB" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$REPA" ] || [ -z "$REPB" ]; then
	echo "smoke: store replicas did not start" >&2
	cat "$WORK/repA.log" "$WORK/repB.log" >&2
	exit 1
fi
# Both replicas must be discoverable behind the registry before the drill.
i=0
while [ $i -lt 100 ]; do
	n=$(curl -fsS "$REG2/inquiry?name=Session" 2>/dev/null |
		grep -o '"endpoint"' | wc -l) || n=0
	[ "$n" -ge 2 ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ "$n" -lt 2 ]; then
	echo "smoke: registry lists $n Session endpoint(s), want 2" >&2
	exit 1
fi

# Train a session on replica A; the token must be the portable dms1 form.
"$WORK/dmclient" -url "$REPA/services/Session" -op createSession \
	-timeout 30s -file "dataset=$WORK/breast.arff" \
	-part classifier=J48 -part attribute=Class >"$WORK/sess.out" 2>"$WORK/sess.err" || {
	echo "smoke: createSession on replica A failed" >&2
	cat "$WORK/sess.out" "$WORK/sess.err" >&2
	exit 1
}
TOKEN=$(sed -n '/^=== session ===$/{n;p;}' "$WORK/sess.out")
case "$TOKEN" in
dms1.*) ;;
*)
	echo "smoke: session id '$TOKEN' is not a portable dms1 token" >&2
	cat "$WORK/sess.out" >&2
	exit 1
	;;
esac

# Kill the serving replica the hard way: SIGKILL, mid-session.
kill -9 "$REPA_PID" 2>/dev/null || true
wait "$REPA_PID" 2>/dev/null || true
REPA_PID=""

# The very next call lands on the survivor and must answer warm.
"$WORK/dmclient" -url "$REPB/services/Session" -op classify \
	-timeout 30s -part "session=$TOKEN" -file "instances=$WORK/breast.arff" \
	>"$WORK/resume.out" 2>"$WORK/resume.err" || {
	echo "smoke: classify on the survivor failed after SIGKILL" >&2
	cat "$WORK/resume.out" "$WORK/resume.err" >&2
	exit 1
}
labels=$(sed -n '/^=== labels ===$/,$p' "$WORK/resume.out" | grep -c 'recurrence\|no-recurrence') || labels=0
if [ "$labels" -lt 1 ]; then
	echo "smoke: survivor returned no labels" >&2
	cat "$WORK/resume.out" >&2
	exit 1
fi

# The survivor must prove it resumed from the store, not by retraining:
# a nonzero store hit, and no harness build at all.
curl -fsS "$REPB/metrics" >"$WORK/storeB-metrics.json"
if ! grep -Eq '"store_hits_total[^"]*": *[1-9]' "$WORK/storeB-metrics.json"; then
	echo "smoke: survivor shows no store_hits_total" >&2
	cat "$WORK/storeB-metrics.json" >&2
	exit 1
fi
if ! grep -Eq '"harness_store_restores_total[^"]*": *[1-9]' "$WORK/storeB-metrics.json"; then
	echo "smoke: survivor shows no harness_store_restores_total" >&2
	cat "$WORK/storeB-metrics.json" >&2
	exit 1
fi
if grep -Eq '"harness_builds_total[^"]*": *[1-9]' "$WORK/storeB-metrics.json"; then
	echo "smoke: survivor retrained (harness_builds_total > 0)" >&2
	cat "$WORK/storeB-metrics.json" >&2
	exit 1
fi

echo "smoke: phase 5 ok (token resumed on survivor, store hit, zero retrains)"

# ---------------------------------------------------------------------------
# Phase 6: batched binary scoring. A 1024-row dmb1 payload (the embedded
# breast-cancer rows tiled to batch size) goes through the phase-1
# dmserver's Session service in ONE classifyBatch call: train a session,
# ship the block, get a dmr1 result block back. The reply must carry all
# 1024 labels (decoded and counted with dminfo -decode-dmb1), and the
# server's /metrics must show the batch path ran: batch_rows_total
# counts the decoded rows, batch_decode_ms timed the wire decode.
"$WORK/dminfo" -embedded breast-cancer -tile 1024 -dmb1 >"$WORK/payload.b64"

"$WORK/dmclient" -url "$BASE/services/Session" -op createSession \
	-timeout 30s -file "dataset=$WORK/breast.arff" \
	-part classifier=J48 -part attribute=Class >"$WORK/sess6.out" 2>"$WORK/sess6.err" || {
	echo "smoke: phase-6 createSession failed" >&2
	cat "$WORK/sess6.out" "$WORK/sess6.err" >&2
	exit 1
}
TOKEN6=$(sed -n '/^=== session ===$/{n;p;}' "$WORK/sess6.out")

"$WORK/dmclient" -url "$BASE/services/Session" -op classifyBatch \
	-timeout 30s -part "session=$TOKEN6" -part encoding=dmb1 \
	-file "payload=$WORK/payload.b64" >"$WORK/batch6.out" 2>"$WORK/batch6.err" || {
	echo "smoke: classifyBatch failed" >&2
	cat "$WORK/batch6.out" "$WORK/batch6.err" >&2
	exit 1
}
rows=$(sed -n '/^=== rows ===$/{n;p;}' "$WORK/batch6.out")
if [ "$rows" != 1024 ]; then
	echo "smoke: classifyBatch returned rows=$rows, want 1024" >&2
	cat "$WORK/batch6.out" >&2
	exit 1
fi
# The result payload must decode as a dmr1 block carrying 1024 labels.
sed -n '/^=== payload ===$/{n;p;}' "$WORK/batch6.out" >"$WORK/result.b64"
"$WORK/dminfo" -decode-dmb1 "$WORK/result.b64" >"$WORK/result.txt"
if ! grep -q "dmr1 result block: .* 1024 row(s)" "$WORK/result.txt"; then
	echo "smoke: result block did not decode to 1024 rows" >&2
	cat "$WORK/result.txt" >&2
	exit 1
fi

curl -fsS "$BASE/metrics" >"$WORK/batch-metrics.json"
rowsTotal=$(sed -n 's/.*"batch_rows_total{op=classifyBatch}": *\([0-9]*\).*/\1/p' "$WORK/batch-metrics.json" | head -1)
if [ -z "$rowsTotal" ] || [ "$rowsTotal" -lt 1024 ]; then
	echo "smoke: batch_rows_total=$rowsTotal, want >= 1024" >&2
	cat "$WORK/batch-metrics.json" >&2
	exit 1
fi
if ! grep -q '"batch_decode_ms{op=classifyBatch}' "$WORK/batch-metrics.json"; then
	echo "smoke: no batch_decode_ms histogram after classifyBatch" >&2
	cat "$WORK/batch-metrics.json" >&2
	exit 1
fi

echo "smoke: phase 6 ok (1024-row dmb1 batch scored in one call, metrics observed)"

# ---------------------------------------------------------------------------
# Phase 7: replica churn + store GC. dmsoak boots three dmservers on one
# store directory behind its own registry, drives a mixed train /
# classify / classifyBatch workload through resilience pools, SIGKILLs
# and restarts a random replica every 10s, and deletes stored models so
# the replicas' background GC has dead bytes to reclaim. The soak must
# end with zero client-visible failures, at least one kill survived, and
# a nonzero GC reclaim (the run's sweeps plus the closing forced
# compaction).
go build -o "$WORK/dmsoak" ./cmd/dmsoak

"$WORK/dmsoak" -replicas 3 -duration 30s -kill-every 10s -workers 4 \
	-dmserver "$WORK/dmserver" -out "$WORK/soak.json" \
	>"$WORK/soak.out" 2>"$WORK/soak.err" || {
	echo "smoke: dmsoak run failed (error budget exceeded?)" >&2
	cat "$WORK/soak.json" 2>/dev/null >&2 || cat "$WORK/soak.out" >&2
	tail -40 "$WORK/soak.err" >&2
	exit 1
}
if ! grep -q '"failed": 0' "$WORK/soak.json"; then
	echo "smoke: soak saw client-visible failures" >&2
	cat "$WORK/soak.json" >&2
	exit 1
fi
kills=$(sed -n 's/.*"kills": *\([0-9]*\).*/\1/p' "$WORK/soak.json" | head -1)
if [ -z "$kills" ] || [ "$kills" -lt 1 ]; then
	echo "smoke: soak killed $kills replica(s), want >= 1" >&2
	cat "$WORK/soak.json" >&2
	exit 1
fi
reclaimed=$(sed -n 's/.*"reclaimed_bytes": *\([0-9]*\).*/\1/p' "$WORK/soak.json" | head -1)
if [ -z "$reclaimed" ] || [ "$reclaimed" -lt 1 ]; then
	echo "smoke: soak reclaimed $reclaimed byte(s) of garbage, want > 0" >&2
	cat "$WORK/soak.json" >&2
	exit 1
fi

echo "smoke: phase 7 ok (kills=$kills survived, failed=0, gc reclaimed ${reclaimed}B)"

# ---------------------------------------------------------------------------
# Phase 8: durable workflow resume. Two dmservers share a model store; a
# journaled dmflow run trains a session on the fast replica and then
# classifies on a replica whose classify op carries 3s of injected
# latency. dmflow is SIGKILLed mid-classify — after the train step was
# journaled — and re-run with -resume. The resumed run must complete,
# print the labels, and must NOT re-invoke createSession: the trained
# step replays from the journal, proven by the fast replica's
# soap_server_requests_total{op=createSession} counter standing still.
go build -o "$WORK/dmflow" ./cmd/dmflow

WFSTORE="$WORK/wfstore"
"$WORK/dmserver" -addr 127.0.0.1:0 -store-dir "$WFSTORE" >"$WORK/wfA.log" 2>&1 &
WFA_PID=$!
"$WORK/dmserver" -addr 127.0.0.1:0 -store-dir "$WFSTORE" \
	-chaos 'op=classify,latency=3s' >"$WORK/wfB.log" 2>&1 &
WFB_PID=$!
WFA=""
WFB=""
i=0
while [ $i -lt 100 ]; do
	WFA=$(sed -n 's|^dmserver listening on \(http://[^ ]*\).*|\1|p' "$WORK/wfA.log" | head -1)
	WFB=$(sed -n 's|^dmserver listening on \(http://[^ ]*\).*|\1|p' "$WORK/wfB.log" | head -1)
	[ -n "$WFA" ] && [ -n "$WFB" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$WFA" ] || [ -z "$WFB" ]; then
	echo "smoke: phase-8 dmservers did not start" >&2
	cat "$WORK/wfA.log" "$WORK/wfB.log" >&2
	exit 1
fi

# The workflow: one embedded dataset feeding createSession on the fast
# replica, whose session token cables into classify on the slow one.
cat >"$WORK/wf.xml" <<EOF
<?xml version="1.0" encoding="UTF-8"?>
<workflow name="smoke-resume">
  <task id="data">
    <unit kind="const">
      <config name="name">dataset-source</config>
      <config name="value.dataset">$(cat "$WORK/breast.arff")</config>
    </unit>
  </task>
  <task id="train">
    <unit kind="soap">
      <config name="endpoint">$WFA/services/Session</config>
      <config name="service">Session</config>
      <config name="operation">createSession</config>
      <config name="in.0">dataset</config>
      <config name="in.1">classifier</config>
      <config name="in.2">attribute</config>
      <config name="out.0">session</config>
    </unit>
    <param name="classifier">J48</param>
    <param name="attribute">Class</param>
  </task>
  <task id="score">
    <unit kind="soap">
      <config name="endpoint">$WFB/services/Session</config>
      <config name="service">Session</config>
      <config name="operation">classify</config>
      <config name="in.0">session</config>
      <config name="in.1">instances</config>
      <config name="out.0">labels</config>
    </unit>
  </task>
  <cable fromTask="data" fromPort="dataset" toTask="train" toPort="dataset"/>
  <cable fromTask="data" fromPort="dataset" toTask="score" toPort="instances"/>
  <cable fromTask="train" fromPort="session" toTask="score" toPort="session"/>
</workflow>
EOF

# First run: journaled, killed the hard way once the train step lands in
# the journal (the classify step is then waiting out the 3s of chaos).
"$WORK/dmflow" -sequential -journal "$WORK/wf.jsonl" "$WORK/wf.xml" \
	>"$WORK/wf1.out" 2>"$WORK/wf1.err" &
DMFLOW_PID=$!
i=0
while [ $i -lt 100 ]; do
	grep '"step":"train"' "$WORK/wf.jsonl" 2>/dev/null | grep -q '"status":"ok"' && break
	i=$((i + 1))
	sleep 0.1
done
if ! grep '"step":"train"' "$WORK/wf.jsonl" 2>/dev/null | grep -q '"status":"ok"'; then
	echo "smoke: train step never reached the journal" >&2
	cat "$WORK/wf1.err" "$WORK/wf.jsonl" 2>/dev/null >&2
	exit 1
fi
kill -9 "$DMFLOW_PID" 2>/dev/null || true
wait "$DMFLOW_PID" 2>/dev/null || true
DMFLOW_PID=""
if grep '"step":"score"' "$WORK/wf.jsonl" | grep -q '"status":"ok"'; then
	echo "smoke: score step completed before the kill; injected latency too low" >&2
	exit 1
fi

# Snapshot the fast replica's createSession count before the resume.
curl -fsS "$WFA/metrics" >"$WORK/wfA-metrics-1.json"
trains_before=$(sed -n 's/.*"soap_server_requests_total{op=createSession,service=Session}": *\([0-9]*\).*/\1/p' "$WORK/wfA-metrics-1.json" | head -1)
if [ -z "$trains_before" ] || [ "$trains_before" -lt 1 ]; then
	echo "smoke: fast replica shows createSession=$trains_before before resume, want >= 1" >&2
	cat "$WORK/wfA-metrics-1.json" >&2
	exit 1
fi

# Resume: the journaled data/train steps must replay, score must run.
"$WORK/dmflow" -sequential -journal "$WORK/wf.jsonl" -resume "$WORK/wf.xml" \
	>"$WORK/wf2.out" 2>"$WORK/wf2.err" || {
	echo "smoke: resumed dmflow run failed" >&2
	cat "$WORK/wf2.err" >&2
	exit 1
}
if ! grep -q "\[replayed\] train" "$WORK/wf2.err"; then
	echo "smoke: resumed run did not replay the train step" >&2
	cat "$WORK/wf2.err" >&2
	exit 1
fi
labels=$(sed -n '/^=== score.labels ===$/,$p' "$WORK/wf2.out" | grep -c 'recurrence\|no-recurrence') || labels=0
if [ "$labels" -lt 1 ]; then
	echo "smoke: resumed run produced no labels" >&2
	cat "$WORK/wf2.out" >&2
	exit 1
fi

# The replay must have spared the service: createSession count unchanged.
curl -fsS "$WFA/metrics" >"$WORK/wfA-metrics-2.json"
trains_after=$(sed -n 's/.*"soap_server_requests_total{op=createSession,service=Session}": *\([0-9]*\).*/\1/p' "$WORK/wfA-metrics-2.json" | head -1)
if [ "$trains_after" != "$trains_before" ]; then
	echo "smoke: resume re-invoked createSession ($trains_before -> $trains_after)" >&2
	exit 1
fi

# -report renders the journal: every step ok after the resumed run.
"$WORK/dmflow" -journal "$WORK/wf.jsonl" -report >"$WORK/wf-report.out"
if ! grep -q "3 completed, " "$WORK/wf-report.out"; then
	echo "smoke: journal report does not show 3 completed steps" >&2
	cat "$WORK/wf-report.out" >&2
	exit 1
fi

echo "smoke: phase 8 ok (train journaled once, resume replayed it, createSession=$trains_after unchanged)"

# ---------------------------------------------------------------------------
# Phase 9: chained binary pipeline. A 1024-row weather-numeric dmb1
# block goes through the phase-1 dmserver's Filter service as ONE
# filterBatch call (Normalize); the reply payload — still a dmb1 block,
# no ARFF materialised — cables directly into a clusterBatch call on the
# Clusterer service. The DMC1 reply must decode to 1024 assignments
# across 2 clusters, and /metrics must show both batch ops counted
# their rows.
"$WORK/dminfo" -embedded weather-numeric -tile 1024 -dmb1 >"$WORK/pipe.b64"

"$WORK/dmclient" -url "$BASE/services/Filter" -op filterBatch \
	-timeout 30s -part filter=Normalize -part encoding=dmb1 \
	-file "payload=$WORK/pipe.b64" >"$WORK/pipe-f.out" 2>"$WORK/pipe-f.err" || {
	echo "smoke: filterBatch failed" >&2
	cat "$WORK/pipe-f.out" "$WORK/pipe-f.err" >&2
	exit 1
}
frows=$(sed -n '/^=== rows ===$/{n;p;}' "$WORK/pipe-f.out")
if [ "$frows" != 1024 ]; then
	echo "smoke: filterBatch returned rows=$frows, want 1024" >&2
	cat "$WORK/pipe-f.out" >&2
	exit 1
fi
sed -n '/^=== payload ===$/{n;p;}' "$WORK/pipe-f.out" >"$WORK/pipe-filtered.b64"

# Hop 2: the filtered block is the clusterBatch payload, byte for byte.
"$WORK/dmclient" -url "$BASE/services/Clusterer" -op clusterBatch \
	-timeout 30s -part clusterer=SimpleKMeans -part 'options={"k":"2"}' \
	-part encoding=dmb1 -file "payload=$WORK/pipe-filtered.b64" \
	>"$WORK/pipe-c.out" 2>"$WORK/pipe-c.err" || {
	echo "smoke: clusterBatch on the filtered payload failed" >&2
	cat "$WORK/pipe-c.out" "$WORK/pipe-c.err" >&2
	exit 1
}
crows=$(sed -n '/^=== rows ===$/{n;p;}' "$WORK/pipe-c.out")
if [ "$crows" != 1024 ]; then
	echo "smoke: clusterBatch returned rows=$crows, want 1024" >&2
	cat "$WORK/pipe-c.out" >&2
	exit 1
fi
sed -n '/^=== payload ===$/{n;p;}' "$WORK/pipe-c.out" >"$WORK/pipe-result.b64"
"$WORK/dminfo" -decode-dmb1 "$WORK/pipe-result.b64" >"$WORK/pipe-result.txt"
if ! grep -q "DMC1 cluster result block: .* 1024 row(s), 2 cluster(s)" "$WORK/pipe-result.txt"; then
	echo "smoke: chained reply did not decode to a 1024-row 2-cluster DMC1 block" >&2
	cat "$WORK/pipe-result.txt" >&2
	exit 1
fi

# Both hops must have counted their rows on the server.
curl -fsS "$BASE/metrics" >"$WORK/pipe-metrics.json"
for op in filterBatch clusterBatch; do
	n=$(sed -n 's/.*"batch_rows_total{op='"$op"'}": *\([0-9]*\).*/\1/p' "$WORK/pipe-metrics.json" | head -1)
	if [ -z "$n" ] || [ "$n" -lt 1024 ]; then
		echo "smoke: batch_rows_total{op=$op}=$n, want >= 1024" >&2
		cat "$WORK/pipe-metrics.json" >&2
		exit 1
	fi
done

echo "smoke: phase 9 ok (filterBatch -> clusterBatch chained binary, 1024 rows per hop)"
echo "smoke: ok"
