#!/bin/sh
# scripts/smoke.sh — end-to-end smoke over the observability layer: start a
# real dmserver, probe /healthz and /metrics, then run a small dmexp batch
# against the registry and check that ONE trace ID crosses the client log,
# the server log and the journal. Run from the repo root.
set -eu

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/dmserver" ./cmd/dmserver
go build -o "$WORK/dmexp" ./cmd/dmexp

"$WORK/dmserver" -addr 127.0.0.1:0 -log-level info >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

# The server prints its ephemeral base URL; wait for it.
BASE=""
i=0
while [ $i -lt 50 ]; do
	BASE=$(sed -n 's|^dmserver listening on \(http://[^ ]*\).*|\1|p' "$WORK/server.log" | head -1)
	[ -n "$BASE" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$BASE" ]; then
	echo "smoke: dmserver did not start" >&2
	cat "$WORK/server.log" >&2
	exit 1
fi

# /healthz must answer 200 ok.
code=$(curl -fsS -o "$WORK/health.json" -w '%{http_code}' "$BASE/healthz")
if [ "$code" != 200 ] || ! grep -q '"ok"' "$WORK/health.json"; then
	echo "smoke: /healthz -> $code: $(cat "$WORK/health.json")" >&2
	exit 1
fi

cat >"$WORK/spec.json" <<'EOF'
{
  "name": "smoke",
  "folds": 3,
  "datasets": [{"name": "breast-cancer", "builtin": "breast-cancer"}],
  "algorithms": [{"algorithm": "J48"}]
}
EOF

# Registry-discovered remote dispatch with trace collection; client-side
# structured logs land on stderr.
"$WORK/dmexp" run -spec "$WORK/spec.json" -journal "$WORK/batch.jsonl" \
	-registry "$BASE/registry" -trace -log-level info \
	>"$WORK/dmexp.out" 2>"$WORK/client.log"

# The journal records the batch's trace ID; exactly one ID must cross every
# layer: journal, client log, server log, and the printed trace tree.
TRACE=$(sed -n 's/.*"traceId":"\([^"]*\)".*/\1/p' "$WORK/batch.jsonl" | sort -u)
if [ -z "$TRACE" ]; then
	echo "smoke: journal carries no traceId" >&2
	cat "$WORK/batch.jsonl" >&2
	exit 1
fi
if [ "$(printf '%s\n' "$TRACE" | wc -l)" -ne 1 ]; then
	echo "smoke: journal has several trace IDs:" >&2
	printf '%s\n' "$TRACE" >&2
	exit 1
fi
for probe in "trace=$TRACE:$WORK/client.log" "trace=$TRACE:$WORK/server.log" "trace $TRACE:$WORK/client.log"; do
	pat=${probe%%:*}
	file=${probe#*:}
	if ! grep -q "$pat" "$file"; then
		echo "smoke: $pat absent from $file" >&2
		tail -20 "$file" >&2
		exit 1
	fi
done

# /metrics must now carry non-zero soap and harness counters.
curl -fsS "$BASE/metrics" >"$WORK/metrics.json"
if [ ! -s "$WORK/metrics.json" ]; then
	echo "smoke: /metrics returned an empty body" >&2
	exit 1
fi
for want in soap_server_requests_total harness_cache_; do
	if ! grep -q "\"$want" "$WORK/metrics.json"; then
		echo "smoke: no $want metric at /metrics" >&2
		cat "$WORK/metrics.json" >&2
		exit 1
	fi
done

echo "smoke: ok (base=$BASE trace=$TRACE)"
