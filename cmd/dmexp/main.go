// Command dmexp is the batch experiment runner: it expands a declarative
// algorithm × dataset × hyper-parameter spec into jobs and drives them
// through the fault-tolerant parallel scheduler of internal/experiment,
// checkpointing every outcome to a JSON-lines journal (FlexDM-style).
//
// Usage:
//
//	dmexp run    -spec spec.json [-journal batch.jsonl] [-workers N]
//	             [-timeout 2m] [-retries 2] [-registry URL | -endpoints a,b]
//	             [-resume] [-v]
//	dmexp resume -spec spec.json -journal batch.jsonl [...]     (run -resume)
//	dmexp report -journal batch.jsonl
//
// A killed run restarts with -resume (or the resume subcommand): jobs with
// a completed journal record are skipped, everything else re-executes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:], false)
	case "resume":
		runCmd(os.Args[2:], true)
	case "report":
		reportCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dmexp: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `dmexp — batch experiment engine

  dmexp run    -spec spec.json [-journal batch.jsonl] [flags]   execute a spec
  dmexp resume -spec spec.json -journal batch.jsonl [flags]     continue a killed batch
  dmexp report -journal batch.jsonl                             report from the journal

run/resume flags:
  -spec file        experiment spec (JSON; see README "Batch experiments")
  -journal file     checkpoint journal (JSON lines); required for resume
  -workers N        worker pool size (default NumCPU)
  -timeout D        per-job-attempt timeout, e.g. 90s (default none)
  -retries N        retries per job on transient errors (default 2)
  -registry URL     discover classifier services from this registry and
                    dispatch jobs remotely instead of in-process; the
                    registry is re-inquired when endpoints fail
  -endpoints a,b    dispatch to these SOAP classifier endpoints directly
  -breaker-failures N  consecutive failures that trip an endpoint's
                    circuit breaker (default 5)
  -metrics-out file write the client-side metrics snapshot (breaker
                    opens, ejections, retries) as JSON after the batch
  -resume           skip jobs already completed in the journal
  -v                log per-job scheduler events
  -trace            print the batch's trace tree (per-job spans and their
                    SOAP calls) when the run finishes
  -log-level L      structured log level: debug|info|warn|error|off
`)
}

func runCmd(args []string, resumeDefault bool) {
	fs := flag.NewFlagSet("dmexp run", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec JSON file")
	journalPath := fs.String("journal", "", "checkpoint journal path (JSON lines)")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	parallelism := fs.Int("parallelism", 1, "per-job kernel workers for the local executor (0 = one per CPU; keep 1 when -workers already saturates the machine)")
	timeout := fs.Duration("timeout", 0, "per-job-attempt timeout (0 = none)")
	retries := fs.Int("retries", 2, "retries per job on transient errors")
	registryURL := fs.String("registry", "", "registry URL for remote dispatch")
	endpoints := fs.String("endpoints", "", "comma-separated SOAP classifier endpoints for remote dispatch")
	breakerFailures := fs.Int("breaker-failures", 0, "consecutive failures tripping an endpoint breaker (0 = default 5)")
	metricsOut := fs.String("metrics-out", "", "write the client-side metrics snapshot as JSON to this file after the batch")
	resume := fs.Bool("resume", resumeDefault, "skip jobs completed in the journal")
	verbose := fs.Bool("v", false, "log scheduler events")
	trace := fs.Bool("trace", false, "collect spans and print the batch's trace tree on completion")
	logLevel := fs.String("log-level", "", "structured log level: debug|info|warn|error|off (default warn, info with -v)")
	_ = fs.Parse(args)

	switch {
	case *logLevel != "":
		lvl, err := obs.ParseLevel(*logLevel)
		if err != nil {
			fatal(err)
		}
		obs.SetDefaultLevel(lvl)
	case *verbose:
		obs.SetDefaultLevel(obs.LevelInfo)
	}

	if *specPath == "" {
		fatal("dmexp: -spec is required")
	}
	spec, err := experiment.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		fatal(err)
	}
	data, err := spec.Materialize()
	if err != nil {
		fatal(err)
	}

	var journal *experiment.Journal
	if *journalPath != "" {
		journal, err = experiment.OpenJournal(*journalPath)
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
		if journal.Len() > 0 && !*resume {
			fatal(fmt.Sprintf("dmexp: journal %s already has %d records; use -resume to continue the batch or point -journal at a fresh file",
				*journalPath, journal.Len()))
		}
	} else if *resume {
		fatal("dmexp: -resume needs -journal")
	}

	var exec experiment.Executor = experiment.Local{Parallelism: *parallelism}
	switch {
	case *registryURL != "":
		remote, err := experiment.DiscoverRemote(*registryURL, nil)
		if err != nil {
			fatal(err)
		}
		remote.Breaker.FailureThreshold = *breakerFailures
		fmt.Fprintf(os.Stderr, "dmexp: dispatching to %d classifier service(s) from %s\n",
			len(remote.Endpoints()), *registryURL)
		exec = remote
	case *endpoints != "":
		remote, err := experiment.NewRemote(strings.Split(*endpoints, ",")...)
		if err != nil {
			fatal(err)
		}
		remote.Breaker.FailureThreshold = *breakerFailures
		exec = remote
	}

	sched := &experiment.Scheduler{
		Workers:    *workers,
		JobTimeout: *timeout,
		MaxRetries: *retries,
	}
	if *verbose {
		sched.Monitor = func(ev experiment.Event) {
			switch ev.Kind {
			case experiment.JobFailed:
				fmt.Fprintf(os.Stderr, "[%s] %s attempt %d: %v (%s)\n",
					ev.Kind, ev.Job.ID, ev.Attempt, ev.Err, ev.Duration.Round(time.Millisecond))
			case experiment.JobRetrying:
				fmt.Fprintf(os.Stderr, "[%s] %s attempt %d after %s\n",
					ev.Kind, ev.Job.ID, ev.Attempt, ev.Wait.Round(time.Millisecond))
			default:
				fmt.Fprintf(os.Stderr, "[%s] %s\n", ev.Kind, ev.Job.ID)
			}
		}
	}

	// SIGINT/SIGTERM cancel the batch; the journal keeps what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With -trace, collect every span the batch produces (scheduler jobs,
	// SOAP client calls) and print the assembled trace tree afterwards.
	var collector *obs.Collector
	if *trace {
		collector = obs.NewCollector()
		ctx = obs.ContextWithCollector(ctx, collector)
	}

	fmt.Fprintf(os.Stderr, "dmexp: %s: %d jobs via %s executor\n", spec.Name, len(jobs), exec.Name())
	began := time.Now()
	results, err := sched.Run(ctx, jobs, data, exec, journal)
	if collector != nil {
		fmt.Fprint(os.Stderr, collector.TreeString())
	}
	// The failover evidence (breaker opens, endpoint ejections, retries)
	// lives in this process's metrics, not the servers'. Dump it before
	// deciding the exit code so an interrupted batch still leaves a trace.
	if *metricsOut != "" {
		if werr := writeMetrics(*metricsOut); werr != nil {
			fmt.Fprintf(os.Stderr, "dmexp: writing metrics: %v\n", werr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmexp: batch interrupted: %v (journal keeps %d records; rerun with -resume)\n",
			err, journalLen(journal))
		os.Exit(1)
	}
	fmt.Print(experiment.Report(results))
	fmt.Printf("\nbatch %q: %d jobs in %s\n", spec.Name, len(results), time.Since(began).Round(time.Millisecond))
	for _, res := range results {
		if res.Status == experiment.StatusFailed {
			os.Exit(1)
		}
	}
}

// writeMetrics dumps the process-wide metrics snapshot as JSON.
func writeMetrics(path string) error {
	data, err := json.MarshalIndent(obs.Default.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func journalLen(j *experiment.Journal) int {
	if j == nil {
		return 0
	}
	return j.Len()
}

func reportCmd(args []string) {
	fs := flag.NewFlagSet("dmexp report", flag.ExitOnError)
	journalPath := fs.String("journal", "", "journal path (JSON lines)")
	_ = fs.Parse(args)
	if *journalPath == "" {
		fatal("dmexp: -journal is required")
	}
	journal, err := experiment.OpenJournal(*journalPath)
	if err != nil {
		fatal(err)
	}
	defer journal.Close()
	results := experiment.ResultsFromRecords(journal.Records())
	if len(results) == 0 {
		fatal(fmt.Sprintf("dmexp: journal %s is empty", *journalPath))
	}
	fmt.Print(experiment.Report(results))
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}
