// Command dminfo prints the dataset statistics block of the paper's
// Figure 3 for an ARFF or CSV file (or for the embedded breast-cancer
// replica when run with -embedded breast-cancer). It also introspects
// the toolkit itself: -list prints every registered algorithm, and
// -arff dumps an embedded dataset as an ARFF document (handy for
// feeding the SOAP services from scripts).
//
// Usage:
//
//	dminfo file.arff
//	dminfo -format csv file.csv
//	dminfo -embedded breast-cancer
//	dminfo -embedded weather -arff
//	dminfo -list
//	dminfo -store /var/lib/dmserver/models
//	dminfo -decode-dmb1 payload.bin
package main

import (
	"bytes"
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/arff"
	"repro/internal/attrsel"
	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/csvconv"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/store"
	"repro/internal/wire"
)

func main() {
	format := flag.String("format", "", "input format: arff or csv (default: by extension)")
	embedded := flag.String("embedded", "", "print an embedded dataset: breast-cancer, weather, weather-numeric, contact-lenses")
	list := flag.Bool("list", false, "list registered classifiers, clusterers and attribute-selection approaches")
	asARFF := flag.Bool("arff", false, "dump the dataset as an ARFF document instead of the statistics block")
	asDMB1 := flag.Bool("dmb1", false, "dump the dataset as a base64 dmb1 block instead of the statistics block")
	tile := flag.Int("tile", 0, "replicate the dataset's rows round-robin until it has N rows (for building batch payloads)")
	storeDir := flag.String("store", "", "list the snapshots of a content-addressed model store directory")
	decodeDMB1 := flag.String("decode-dmb1", "", "decode a captured payload file — dmb1 dataset, dmr1/DMC1/DMV1 result block (raw bytes or base64 text) — and print a summary")
	flag.Parse()

	if *decodeDMB1 != "" {
		if err := decodePayload(*decodeDMB1, *asARFF); err != nil {
			log.Fatalf("dminfo: %v", err)
		}
		return
	}

	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("dminfo: %v", err)
		}
		defer s.Close()
		entries := s.List()
		fmt.Printf("Model store %s: %d snapshot(s), generation %d\n", s.Dir(), len(entries), s.Generation())
		fmt.Printf("  bytes: %d indexed = %d live + %d dead (GC-reclaimable)\n",
			s.Bytes(), s.LiveBytes(), s.DeadBytes())
		byAlgo := map[string]int{}
		for _, e := range entries {
			name := e.Meta.Algorithm
			if name == "" {
				name = "(unknown)"
			}
			byAlgo[name]++
		}
		algos := make([]string, 0, len(byAlgo))
		for name := range byAlgo {
			algos = append(algos, name)
		}
		sort.Strings(algos)
		for _, name := range algos {
			fmt.Printf("  %-22s %d snapshot(s)\n", name, byAlgo[name])
		}
		for _, e := range entries {
			created := "-"
			if e.Meta.Created > 0 {
				created = time.Unix(e.Meta.Created, 0).UTC().Format(time.RFC3339)
			}
			fmt.Printf("  %s  %-22s %-10s %8d B  %s\n", e.Key, e.Meta.Algorithm, e.Meta.Kind, e.Size, created)
		}
		return
	}

	if *list {
		fmt.Println("Classifiers:")
		for _, n := range classify.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("Clusterers:")
		for _, n := range cluster.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("Attribute selection:")
		for _, n := range attrsel.Approaches() {
			fmt.Println("  " + n)
		}
		return
	}

	var d *dataset.Dataset
	switch {
	case *embedded != "":
		switch *embedded {
		case "breast-cancer":
			d = datagen.BreastCancer()
		case "weather":
			d = datagen.Weather()
		case "weather-numeric":
			d = datagen.WeatherNumeric()
		case "contact-lenses":
			d = datagen.ContactLenses()
		default:
			log.Fatalf("dminfo: unknown embedded dataset %q", *embedded)
		}
	case flag.NArg() == 1:
		path := flag.Arg(0)
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("dminfo: %v", err)
		}
		f := *format
		if f == "" {
			if strings.HasSuffix(strings.ToLower(path), ".csv") {
				f = "csv"
			} else {
				f = "arff"
			}
		}
		switch f {
		case "arff":
			d, err = arff.ParseString(string(data))
		case "csv":
			d, err = csvconv.ParseString(string(data), csvconv.Options{HasHeader: true})
		default:
			log.Fatalf("dminfo: unknown format %q", f)
		}
		if err != nil {
			log.Fatalf("dminfo: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *tile > 0 {
		d = tileRows(d, *tile)
	}
	if *asARFF {
		fmt.Print(arff.Format(d))
		return
	}
	if *asDMB1 {
		payload, err := wire.MarshalBase64(d)
		if err != nil {
			log.Fatalf("dminfo: %v", err)
		}
		fmt.Println(payload)
		return
	}
	fmt.Printf("Relation: %s\n\n", d.Relation)
	fmt.Print(dataset.Summarize(d).Format())
}

// tileRows replicates d's rows round-robin until the copy holds n rows —
// how the smoke test inflates an embedded dataset into a batch payload.
func tileRows(d *dataset.Dataset, n int) *dataset.Dataset {
	out := d.CloneSchema()
	for i := 0; i < n; i++ {
		src := d.Instances[i%len(d.Instances)]
		in := dataset.NewInstance(append([]float64(nil), src.Values...))
		in.Weight = src.Weight
		out.MustAdd(in)
	}
	return out
}

// decodePayload prints a human-readable summary of a captured payload
// block: a dmb1 dataset, a dmr1 classification result, a DMC1 cluster
// result or a DMV1 regression result. SOAP envelopes carry the payload
// part base64-encoded; the file may hold either that text or the raw
// bytes after decoding — both are accepted.
func decodePayload(path string, asARFF bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	raw := payloadBytes(data)

	if d, err := wire.Unmarshal(raw); err == nil {
		fmt.Printf("dmb1 dataset block: %d bytes, %d row(s), %d attribute(s)\n",
			len(raw), d.NumInstances(), len(d.Attrs))
		if ca := d.ClassAttribute(); ca != nil {
			fmt.Printf("class attribute: %s\n", ca.Name)
		} else {
			fmt.Println("class attribute: (none)")
		}
		if asARFF {
			fmt.Print(arff.Format(d))
			return nil
		}
		fmt.Printf("\nRelation: %s\n\n", d.Relation)
		fmt.Print(dataset.Summarize(d).Format())
		return nil
	}
	if res, err := wire.UnmarshalResult(raw); err == nil {
		fmt.Printf("dmr1 result block: %d bytes, %d row(s), %d class(es): %s\n",
			len(raw), len(res.Labels), len(res.Classes), strings.Join(res.Classes, ", "))
		counts := make([]int, len(res.Classes))
		for _, l := range res.Labels {
			counts[l]++
		}
		for i, name := range res.Classes {
			fmt.Printf("  %-20s %d\n", name, counts[i])
		}
		return nil
	}
	if res, err := wire.UnmarshalClusterResult(raw); err == nil {
		kind := res.ScoreKind
		if kind == "" {
			kind = "(none)"
		}
		fmt.Printf("DMC1 cluster result block: %d bytes, %d row(s), %d cluster(s), score columns: %s\n",
			len(raw), len(res.Assignments), res.Clusters, kind)
		counts := map[int]int{}
		for _, a := range res.Assignments {
			counts[a]++
		}
		for cl := -1; cl < res.Clusters; cl++ {
			if counts[cl] == 0 {
				continue
			}
			name := fmt.Sprintf("cluster %d", cl)
			if cl < 0 {
				name = "noise"
			}
			fmt.Printf("  %-20s %d\n", name, counts[cl])
		}
		return nil
	}
	if res, err := wire.UnmarshalRegressResult(raw); err == nil {
		fmt.Printf("DMV1 regression result block: %d bytes, %d row(s), target %s\n",
			len(raw), len(res.Values), res.Target)
		if len(res.Values) > 0 {
			min, max, sum := res.Values[0], res.Values[0], 0.0
			for _, v := range res.Values {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
				sum += v
			}
			fmt.Printf("  min %.4g  mean %.4g  max %.4g\n", min, sum/float64(len(res.Values)), max)
		}
		return nil
	}
	return fmt.Errorf("not a decodable payload (tried dmb1, dmr1, DMC1, DMV1)")
}

// payloadBytes undoes the SOAP transport encoding if present: if the
// file is base64 text (possibly with whitespace), decode it; otherwise
// treat it as the raw block.
func payloadBytes(data []byte) []byte {
	trimmed := bytes.Map(func(r rune) rune {
		switch r {
		case ' ', '\n', '\r', '\t':
			return -1
		}
		return r
	}, data)
	if dec, err := base64.StdEncoding.DecodeString(string(trimmed)); err == nil && len(dec) > 0 {
		return dec
	}
	return data
}
