// Command dminfo prints the dataset statistics block of the paper's
// Figure 3 for an ARFF or CSV file (or for the embedded breast-cancer
// replica when run with -embedded breast-cancer). It also introspects
// the toolkit itself: -list prints every registered algorithm, and
// -arff dumps an embedded dataset as an ARFF document (handy for
// feeding the SOAP services from scripts).
//
// Usage:
//
//	dminfo file.arff
//	dminfo -format csv file.csv
//	dminfo -embedded breast-cancer
//	dminfo -embedded weather -arff
//	dminfo -list
//	dminfo -store /var/lib/dmserver/models
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/arff"
	"repro/internal/attrsel"
	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/csvconv"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/store"
)

func main() {
	format := flag.String("format", "", "input format: arff or csv (default: by extension)")
	embedded := flag.String("embedded", "", "print an embedded dataset: breast-cancer, weather, weather-numeric, contact-lenses")
	list := flag.Bool("list", false, "list registered classifiers, clusterers and attribute-selection approaches")
	asARFF := flag.Bool("arff", false, "dump the dataset as an ARFF document instead of the statistics block")
	storeDir := flag.String("store", "", "list the snapshots of a content-addressed model store directory")
	flag.Parse()

	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("dminfo: %v", err)
		}
		defer s.Close()
		entries := s.List()
		fmt.Printf("Model store %s: %d snapshot(s), %d byte(s)\n", s.Dir(), len(entries), s.Bytes())
		for _, e := range entries {
			created := "-"
			if e.Meta.Created > 0 {
				created = time.Unix(e.Meta.Created, 0).UTC().Format(time.RFC3339)
			}
			fmt.Printf("  %s  %-22s %-10s %8d B  %s\n", e.Key, e.Meta.Algorithm, e.Meta.Kind, e.Size, created)
		}
		return
	}

	if *list {
		fmt.Println("Classifiers:")
		for _, n := range classify.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("Clusterers:")
		for _, n := range cluster.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("Attribute selection:")
		for _, n := range attrsel.Approaches() {
			fmt.Println("  " + n)
		}
		return
	}

	var d *dataset.Dataset
	switch {
	case *embedded != "":
		switch *embedded {
		case "breast-cancer":
			d = datagen.BreastCancer()
		case "weather":
			d = datagen.Weather()
		case "weather-numeric":
			d = datagen.WeatherNumeric()
		case "contact-lenses":
			d = datagen.ContactLenses()
		default:
			log.Fatalf("dminfo: unknown embedded dataset %q", *embedded)
		}
	case flag.NArg() == 1:
		path := flag.Arg(0)
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("dminfo: %v", err)
		}
		f := *format
		if f == "" {
			if strings.HasSuffix(strings.ToLower(path), ".csv") {
				f = "csv"
			} else {
				f = "arff"
			}
		}
		switch f {
		case "arff":
			d, err = arff.ParseString(string(data))
		case "csv":
			d, err = csvconv.ParseString(string(data), csvconv.Options{HasHeader: true})
		default:
			log.Fatalf("dminfo: unknown format %q", f)
		}
		if err != nil {
			log.Fatalf("dminfo: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *asARFF {
		fmt.Print(arff.Format(d))
		return
	}
	fmt.Printf("Relation: %s\n\n", d.Relation)
	fmt.Print(dataset.Summarize(d).Format())
}
