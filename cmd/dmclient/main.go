// Command dmclient invokes operations on deployed data-mining Web Services
// from the command line — the scripted counterpart of dropping a service
// tool onto the Triana workspace.
//
// Usage:
//
//	dmclient -url http://host:port/services/Classifier -op getClassifiers
//	dmclient -url .../services/Classifier -op classifyInstance \
//	         -part classifier=J48 -part attribute=Class -file dataset=breast.arff
//	dmclient -registry http://host:port/registry -find classifier
package main

import (
	"context"
	"encoding/base64"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/soap"
)

// partsFlag collects repeated -part name=value arguments.
type partsFlag map[string]string

func (p partsFlag) String() string { return fmt.Sprint(map[string]string(p)) }

func (p partsFlag) Set(s string) error {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return fmt.Errorf("want name=value, got %q", s)
	}
	p[s[:eq]] = s[eq+1:]
	return nil
}

// filePartsFlag collects repeated -file name=path arguments, loading the
// file contents as the part value. With encode set, the bytes are
// base64-encoded first — for shipping raw binary payloads (captured dmb1
// blocks) through string-typed SOAP parts.
type filePartsFlag struct {
	parts  partsFlag
	encode bool
}

func (f filePartsFlag) String() string { return f.parts.String() }

func (f filePartsFlag) Set(s string) error {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return fmt.Errorf("want name=path, got %q", s)
	}
	data, err := os.ReadFile(s[eq+1:])
	if err != nil {
		return err
	}
	if f.encode {
		f.parts[s[:eq]] = base64.StdEncoding.EncodeToString(data)
	} else {
		f.parts[s[:eq]] = strings.TrimSpace(string(data))
	}
	return nil
}

func main() {
	url := flag.String("url", "", "service endpoint URL")
	op := flag.String("op", "", "operation name")
	regURL := flag.String("registry", "", "registry base URL (for -find)")
	find := flag.String("find", "", "inquire the registry for services in a category (use with -registry)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-call timeout")
	logLevel := flag.String("log-level", "warn", "structured log level: debug|info|warn|error|off")
	parts := partsFlag{}
	flag.Var(parts, "part", "operation input as name=value (repeatable)")
	flag.Var(filePartsFlag{parts: parts}, "file", "operation input as name=path, loading the file (repeatable)")
	flag.Var(filePartsFlag{parts: parts, encode: true}, "fileb64", "operation input as name=path, base64-encoding the file's raw bytes (repeatable)")
	flag.Parse()

	if lvl, err := obs.ParseLevel(*logLevel); err != nil {
		log.Fatalf("dmclient: %v", err)
	} else {
		obs.SetDefaultLevel(lvl)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch {
	case *regURL != "":
		c := &registry.Client{BaseURL: *regURL}
		entries, err := c.Inquire("", *find)
		if err != nil {
			log.Fatalf("dmclient: %v", err)
		}
		for _, e := range entries {
			fmt.Printf("%-24s %-20s %s\n", e.Name, e.Category, e.WSDLURL)
		}
	case *url != "" && *op != "":
		client := soap.NewClient(soap.WithTimeout(*timeout))
		out, err := client.CallContext(ctx, *url, *op, parts)
		if err != nil {
			log.Fatalf("dmclient: %v", err)
		}
		keys := make([]string, 0, len(out))
		for k := range out {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("=== %s ===\n%s\n", k, out[k])
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
