package main

import (
	"context"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/services"
	"repro/internal/workflow"
)

// workflowHedgeResult is the workflow_hedge section of the report: the
// same multi-step workflow run over a two-replica pool where one replica
// answers with injected latency, with and without hedged dispatch.
type workflowHedgeResult struct {
	Steps             int     `json:"steps"`
	Runs              int     `json:"runs"`
	InjectedLatencyMs float64 `json:"injectedLatencyMs"`
	HedgeDelayMs      float64 `json:"hedgeDelayMs"`
	UnhedgedP50Ms     float64 `json:"unhedgedP50Ms"`
	UnhedgedP99Ms     float64 `json:"unhedgedP99Ms"`
	HedgedP50Ms       float64 `json:"hedgedP50Ms"`
	HedgedP99Ms       float64 `json:"hedgedP99Ms"`
	HedgeWins         int64   `json:"hedgeWins"`
	P99Speedup        float64 `json:"p99Speedup"`
}

// hostHedgeClassifier mounts a Classifier service, optionally behind a
// chaos injector, and returns the endpoint plus a shutdown func.
func hostHedgeClassifier(inj *chaos.Injector) (string, func()) {
	mux := http.NewServeMux()
	srv := httptest.NewServer(inj.Wrap(mux))
	paths := services.Host(mux, srv.URL, services.NewClassifierService(harness.NewCachedBackend(4)))
	return srv.URL + paths["Classifier"], srv.Close
}

// hedgeWorkflow composes the 3-step benchmark workflow — list the
// algorithms, pick J48, fetch its options — against a registry-backed
// pool. Both SOAP steps round-robin over the same two replicas.
func hedgeWorkflow(regURL string, hedged bool, hp *resilience.HedgePolicy) *workflow.Graph {
	soapStep := func(op string, in, out []string) *workflow.SOAPUnit {
		u := &workflow.SOAPUnit{
			Service:     "Classifier",
			Operation:   op,
			In:          in,
			Out:         out,
			RegistryURL: regURL,
			Category:    "classifier",
		}
		if hedged {
			u.Hedge = true
			u.HedgePolicy = hp
		}
		return u
	}
	g := workflow.NewGraph("hedge-bench")
	g.MustAdd("list", soapStep("getClassifiers", nil, []string{"classifiers"}))
	g.MustAdd("pick", &workflow.FuncUnit{
		UnitName: "pick-J48",
		In:       []string{"classifiers"},
		Out:      []string{"classifier"},
		Fn: func(ctx context.Context, in workflow.Values) (workflow.Values, error) {
			for _, name := range strings.Split(in["classifiers"], "\n") {
				if strings.TrimSpace(name) == "J48" {
					return workflow.Values{"classifier": "J48"}, nil
				}
			}
			return workflow.Values{"classifier": "J48"}, nil
		},
	})
	g.MustAdd("opts", soapStep("getOptions", []string{"classifier"}, []string{"options"}))
	g.MustConnect("list", "classifiers", "pick", "classifiers")
	g.MustConnect("pick", "classifier", "opts", "classifier")
	return g
}

// workflowHedgeExperiment measures tail latency of the 3-step workflow
// when one of the two replicas answers every call 500ms late: unhedged,
// round-robin lands roughly every other SOAP step on the slow replica
// and the workflow wall clock eats the full injected latency; hedged, a
// backup attempt on the healthy replica wins the race at the hedge
// delay. A fixed hedge delay keeps the run deterministic — the latency
// EWMA would be polluted by the steady stream of slow successes.
func workflowHedgeExperiment() workflowHedgeResult {
	const (
		injected   = 500 * time.Millisecond
		hedgeDelay = 25 * time.Millisecond
		runs       = 12
	)
	slowEp, closeSlow := hostHedgeClassifier(chaos.New(11, chaos.Rule{Latency: injected}))
	defer closeSlow()
	fastEp, closeFast := hostHedgeClassifier(nil)
	defer closeFast()

	reg := registry.New()
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()
	for _, ep := range []string{slowEp, fastEp} {
		if err := reg.Publish(registry.Entry{
			Name: "Classifier", Category: "classifier", Endpoint: ep, WSDLURL: ep,
		}); err != nil {
			log.Fatal(err)
		}
	}

	var hs resilience.HedgeStats
	measure := func(g *workflow.Graph, ctx context.Context) (wallsMs []float64) {
		eng := workflow.NewEngine()
		for i := 0; i < runs; i++ {
			began := time.Now()
			if _, err := eng.Run(ctx, g); err != nil {
				log.Fatal(err)
			}
			wallsMs = append(wallsMs, float64(time.Since(began))/float64(time.Millisecond))
		}
		return wallsMs
	}
	unhedged := measure(hedgeWorkflow(regSrv.URL, false, nil), context.Background())
	hedged := measure(hedgeWorkflow(regSrv.URL, true, &resilience.HedgePolicy{Delay: hedgeDelay}),
		resilience.WithHedgeStats(context.Background(), &hs))

	res := workflowHedgeResult{
		Steps:             3,
		Runs:              runs,
		InjectedLatencyMs: float64(injected) / float64(time.Millisecond),
		HedgeDelayMs:      float64(hedgeDelay) / float64(time.Millisecond),
		UnhedgedP50Ms:     percentileMs(unhedged, 0.50),
		UnhedgedP99Ms:     percentileMs(unhedged, 0.99),
		HedgedP50Ms:       percentileMs(hedged, 0.50),
		HedgedP99Ms:       percentileMs(hedged, 0.99),
		HedgeWins:         hs.Wins.Load(),
	}
	if res.HedgedP99Ms > 0 {
		res.P99Speedup = res.UnhedgedP99Ms / res.HedgedP99Ms
	}
	return res
}

// percentileMs returns the p-th percentile of the samples (nearest-rank).
func percentileMs(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(p*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
