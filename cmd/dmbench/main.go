// Command dmbench regenerates every figure, table and quantified claim of
// the paper (DESIGN.md's experiment index E1-E15) and prints a
// paper-vs-measured report — the source of EXPERIMENTS.md.
//
// Usage:
//
//	dmbench [-invocations 200] [-parallel-out BENCH_parallel.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/arff"
	"repro/internal/assoc"
	"repro/internal/attrsel"
	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/soap"
	"repro/internal/store"
	"repro/internal/workflow"
)

func main() {
	invocations := flag.Int("invocations", 200, "repeated invocations for the §4.5 experiment")
	parallelOut := flag.String("parallel-out", "", "write the parallel-kernel speedup report to this JSON file")
	flag.Parse()
	w := os.Stdout

	report := func(id, artefact, paper, measured string) {
		fmt.Fprintf(w, "%-4s %-34s\n     paper:    %s\n     measured: %s\n\n", id, artefact, paper, measured)
	}

	d := datagen.BreastCancer()
	arffText := arff.Format(d)

	// E3 (Figure 3): dataset statistics.
	s := dataset.Summarize(d)
	report("E3", "Figure 3: breast-cancer statistics",
		"286 instances, 10 attributes, 9 missing (0.3%), distinct 6/3/11/7/2/3/2/5/2/2",
		fmt.Sprintf("%d instances, %d attributes, %d missing (%.1f%%), distinct %s",
			s.NumInstances, s.NumAttributes, s.MissingCells, s.MissingPct, distincts(s)))

	// E4 (Figure 4): the C4.5 tree.
	j := classify.NewJ48()
	if err := j.Train(d); err != nil {
		log.Fatal(err)
	}
	cv, err := classify.CrossValidateContext(context.Background(),
		func() classify.Classifier { return classify.NewJ48() }, d, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	report("E4", "Figure 4: J48 decision tree",
		"node-caps at the root of the pruned tree, deg-malig below node-caps=yes",
		fmt.Sprintf("root=%s, under yes=%s, %d leaves, size %d, 10-fold CV accuracy %.3f",
			j.Tree().AttrName, underYes(j), j.NumLeaves(), j.TreeSize(), cv.Accuracy()))

	// E5 (§4.5): serialise-per-call vs the in-memory harness.
	serNs, cacheNs := invocationExperiment(d, *invocations)
	report("E5", "§4.5: repeated-invocation penalty",
		"\"significant performance penalty\" from per-call serialise/rebuild; removed by the in-memory harness",
		fmt.Sprintf("serialising %.0f µs/invocation vs cached %.2f µs/invocation (%.0fx speedup) over %d invocations",
			serNs/1e3, cacheNs/1e3, serNs/cacheNs, *invocations))

	// Deploy services for the live experiments.
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// E1 (Figure 1) + E6: the case-study workflow over live SOAP.
	tk := core.NewToolkit()
	g, viewer, err := core.BuildCaseStudyWorkflow(tk, dep, arffText, "J48", "Class")
	if err != nil {
		log.Fatal(err)
	}
	began := time.Now()
	if _, err := workflow.NewEngine().Run(context.Background(), g); err != nil {
		log.Fatal(err)
	}
	wallE1 := time.Since(began)
	tree := viewer.Seen()[0]
	report("E1", "Figure 1: case-study workflow",
		"4-stage composition (getClassifiers -> selector -> getOptions -> classifyInstance -> treeViewer) produces the decision tree",
		fmt.Sprintf("8-task graph executed over SOAP in %v; viewer captured a %d-char tree rooted at node-caps=%v",
			wallE1.Round(time.Millisecond), len(tree), strings.Contains(tree, "node-caps = yes")))

	// E6: protocol verification.
	out, err := soap.CallContext(context.Background(), dep.EndpointURL("Classifier"), "getClassifiers", nil)
	if err != nil {
		log.Fatal(err)
	}
	nAlgo := len(strings.Split(strings.TrimSpace(out["classifiers"]), "\n"))
	report("E6", "§4.1: general Classifier service protocol",
		"getClassifiers / getOptions / classifyInstance(4 inputs); ~75 algorithms in the full toolkit",
		fmt.Sprintf("%d classifiers offered; full protocol exercised (see TestClassifierServiceProtocol)", nAlgo))

	// E9 (§5.3): genetic attribute search.
	cols, err := attrsel.GeneticSearch{Population: 24, Generations: 15, Seed: 7}.Search(&attrsel.CFS{}, d)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, c := range cols {
		names = append(names, d.Attrs[c].Name)
	}
	report("E9", "§5.3: genetic-search attribute selection",
		"automates the root-attribute choice (node-caps)",
		fmt.Sprintf("GeneticSearch/CFS selects {%s} — includes node-caps: %v",
			strings.Join(names, ", "), contains(names, "node-caps")))

	// E15: the five-stage discovery pipeline with held-out verification.
	train, test, err := dataset.StratifiedSplit(d, 0.66, rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}
	j2 := classify.NewJ48()
	if err := j2.Train(train); err != nil {
		log.Fatal(err)
	}
	ev, err := classify.NewEvaluation(test)
	if err != nil {
		log.Fatal(err)
	}
	if err := ev.TestModel(j2, test); err != nil {
		log.Fatal(err)
	}
	report("E15", "§3.1: five-stage discovery pipeline",
		"select data -> select algorithm -> select resource -> execute -> visualise/verify",
		fmt.Sprintf("66/34 stratified split; held-out accuracy %.3f, kappa %.3f", ev.Accuracy(), ev.Kappa()))

	// Baseline comparison: Apriori vs FP-growth.
	trans := datagen.Baskets(1500, 20, 4, 0.9, 17)
	aprioriMs := mineMs(func() error {
		ap := assoc.NewApriori()
		ap.MinSupport, ap.MinConfidence = 0.08, 0.8
		_, err := ap.Mine(trans)
		return err
	})
	fpMs := mineMs(func() error {
		fp := assoc.NewFPGrowth()
		fp.MinSupport, fp.MinConfidence = 0.08, 0.8
		_, err := fp.Mine(trans)
		return err
	})
	report("—", "Baseline: Apriori vs FP-growth",
		"FP-growth avoids candidate generation and wins on dense data (literature)",
		fmt.Sprintf("Apriori %.1f ms vs FP-growth %.1f ms per full mine (identical itemsets, property-tested)",
			aprioriMs, fpMs))

	// Tentpole: parallel compute kernels at P=1 vs P=GOMAXPROCS.
	pr := parallelExperiment()
	var lines []string
	for _, k := range pr.Kernels {
		lines = append(lines, fmt.Sprintf("%s %.1f ms @P=1 vs %.1f ms @P=%d (%.2fx)",
			k.Kernel, k.P1Ms, k.PNMs, k.Workers, k.Speedup))
	}
	report("—", "Parallel kernels (internal/parallel)",
		"fold/member/assignment fan-out scales with cores; results bit-identical at any worker count",
		fmt.Sprintf("GOMAXPROCS=%d: %s", pr.GoMaxProcs, strings.Join(lines, "; ")))

	// Tentpole: batched dmb1 scoring vs per-instance XML over live SOAP.
	pr.Batch = batchExperiment(dep)
	var batchLines []string
	for _, b := range pr.Batch {
		batchLines = append(batchLines, fmt.Sprintf("N=%d: XML %.0f rows/s vs dmb1 %.0f rows/s (%.1fx)",
			b.BatchSize, b.XMLRowsPerSec, b.DMB1RowsPerSec, b.Speedup))
	}
	report("—", "Batched scoring (classifyBatch/dmb1)",
		"per-call XML envelopes cap scoring throughput; one columnar block amortises parse, model restore and dispatch over N rows",
		strings.Join(batchLines, "; "))

	// Batched clustering: per-instance textual assign vs one clusterBatch.
	pr.BatchCluster = batchClusterExperiment(dep)
	var clusterLines []string
	for _, b := range pr.BatchCluster {
		clusterLines = append(clusterLines, fmt.Sprintf("N=%d: XML %.0f rows/s vs dmb1 %.0f rows/s (%.1fx)",
			b.BatchSize, b.XMLRowsPerSec, b.DMB1RowsPerSec, b.Speedup))
	}
	report("—", "Batched clustering (clusterBatch/DMC1)",
		"per-instance assign calls re-ship the build set and rebuild the model every row; clusterBatch builds once and assigns the block columnar",
		strings.Join(clusterLines, "; "))

	// Batched filtering: the ARFF apply round-trip vs one filterBatch hop.
	pr.BatchFilter = batchFilterExperiment(dep)
	var filterLines []string
	for _, b := range pr.BatchFilter {
		filterLines = append(filterLines, fmt.Sprintf("N=%d: XML %.0f rows/s vs dmb1 %.0f rows/s (%.1fx)",
			b.BatchSize, b.XMLRowsPerSec, b.DMB1RowsPerSec, b.Speedup))
	}
	report("—", "Batched filtering (filterBatch/dmb1)",
		"the textual apply op formats and re-parses ARFF at both ends of every hop; filterBatch moves the same rows as one binary block",
		strings.Join(filterLines, "; "))

	// Model store: snapshot codec throughput and warm resume vs cold retrain.
	pr.Store = storeExperiment()
	var storeLines []string
	for _, r := range pr.Store {
		storeLines = append(storeLines, fmt.Sprintf(
			"%s %.0f KB snapshot, encode %.0f/decode %.0f MB/s, cold %.1f ms vs warm %.2f ms (%.0fx)",
			r.Algorithm, r.SnapshotKB, r.EncodeMBs, r.DecodeMBs, r.ColdTrainMs, r.WarmResumeMs, r.Speedup))
	}
	report("—", "Model store (internal/store)",
		"resume-from-snapshot must beat retraining for the store to pay for itself",
		strings.Join(storeLines, "; "))

	// Store GC: compaction throughput and reclaim on a half-dead store.
	gcRes := storeGCExperiment()
	pr.StoreGC = &gcRes
	report("—", "Store GC (Compact)",
		"a churned store accumulates superseded and tombstoned records; compaction must reclaim them faster than the workload creates them",
		fmt.Sprintf("%d entries, %.0f%% dead: %d -> %d bytes (reclaimed %d) in %.1f ms, %.0f MB/s rewrite",
			gcRes.Entries, gcRes.DeadFraction*100, gcRes.BytesBefore, gcRes.BytesAfter,
			gcRes.ReclaimedBytes, gcRes.CompactMs, gcRes.ThroughputMBs))
	// Hedged dispatch: the 3-step workflow's tail under one slow replica.
	wh := workflowHedgeExperiment()
	pr.WorkflowHedge = &wh
	report("—", "Hedged dispatch (Pool.DoHedged)",
		"a backup attempt on a second healthy replica bounds the tail a slow endpoint adds to every workflow step",
		fmt.Sprintf("%d-step workflow x%d runs, %0.fms latency on 1 of 2 replicas: p50/p99 %.0f/%.0f ms unhedged vs %.0f/%.0f ms hedged (%d hedge wins, p99 %.1fx better)",
			wh.Steps, wh.Runs, wh.InjectedLatencyMs, wh.UnhedgedP50Ms, wh.UnhedgedP99Ms,
			wh.HedgedP50Ms, wh.HedgedP99Ms, wh.HedgeWins, wh.P99Speedup))

	if *parallelOut != "" {
		raw, err := json.MarshalIndent(pr, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*parallelOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "parallel-kernel report written to %s\n\n", *parallelOut)
	}

	fmt.Fprintln(w, "remaining experiments (E2, E7, E8, E10-E14) are asserted by the test suite;")
	fmt.Fprintln(w, "run `go test ./...` and `go test -bench=. -benchmem` for the full evidence.")
}

// kernelResult is one row of the parallel-kernel report: the same kernel
// timed single-threaded and at one worker per CPU.
type kernelResult struct {
	Kernel  string  `json:"kernel"`
	Work    string  `json:"work"`
	P1Ms    float64 `json:"p1Ms"`
	PNMs    float64 `json:"pNMs"`
	Workers int     `json:"workers"`
	Speedup float64 `json:"speedup"`
}

// storeResult is one row of the model-store report: the cost of writing
// and restoring a trained snapshot vs training it again from scratch.
type storeResult struct {
	Algorithm    string  `json:"algorithm"`
	Work         string  `json:"work"`
	SnapshotKB   float64 `json:"snapshotKB"`
	EncodeMBs    float64 `json:"encodeMBs"`
	DecodeMBs    float64 `json:"decodeMBs"`
	ColdTrainMs  float64 `json:"coldTrainMs"`
	WarmResumeMs float64 `json:"warmResumeMs"`
	Speedup      float64 `json:"speedup"`
}

// batchResult is one row of the batched-scoring report: the same rows
// scored through a live session per-instance over XML and as one dmb1
// columnar block.
type batchResult struct {
	BatchSize      int     `json:"batchSize"`
	XMLRowsPerSec  float64 `json:"xmlRowsPerSec"`
	DMB1RowsPerSec float64 `json:"dmb1RowsPerSec"`
	Speedup        float64 `json:"speedup"`
}

// storeGCResult is the store_gc section of the report: what one forced
// compaction of a half-dead store costs and reclaims.
type storeGCResult struct {
	Entries        int     `json:"entries"`
	DeadFraction   float64 `json:"deadFraction"`
	BytesBefore    int64   `json:"bytesBefore"`
	BytesAfter     int64   `json:"bytesAfter"`
	ReclaimedBytes int64   `json:"reclaimedBytes"`
	CompactMs      float64 `json:"compactMs"`
	ThroughputMBs  float64 `json:"throughputMBs"`
}

// parallelReport is the BENCH_parallel.json document.
type parallelReport struct {
	GoMaxProcs    int                  `json:"goMaxProcs"`
	Note          string               `json:"note"`
	Kernels       []kernelResult       `json:"kernels"`
	Batch         []batchResult        `json:"batch,omitempty"`
	BatchCluster  []batchResult        `json:"batch_cluster,omitempty"`
	BatchFilter   []batchResult        `json:"batch_filter,omitempty"`
	Store         []storeResult        `json:"store,omitempty"`
	StoreGC       *storeGCResult       `json:"store_gc,omitempty"`
	WorkflowHedge *workflowHedgeResult `json:"workflow_hedge,omitempty"`
}

// parallelExperiment times the three headline kernels (cross-validation
// folds, Bagging member training, the k-means assignment scan) at P=1 and
// P=GOMAXPROCS. On a single-CPU machine both levels take the sequential
// path and the speedup column reads ~1.0 by construction.
func parallelExperiment() parallelReport {
	n := runtime.GOMAXPROCS(0)
	timeMs := func(fn func(p int), p int) float64 {
		const runs = 3
		fn(p) // warm-up
		began := time.Now()
		for i := 0; i < runs; i++ {
			fn(p)
		}
		return float64(time.Since(began).Microseconds()) / 1e3 / runs
	}
	kernel := func(name, work string, fn func(p int)) kernelResult {
		p1 := timeMs(fn, 1)
		pn := timeMs(fn, n)
		return kernelResult{Kernel: name, Work: work, P1Ms: p1, PNMs: pn,
			Workers: n, Speedup: p1 / pn}
	}
	cvData := datagen.RandomNominal(1200, 10, 4, 0.3, 29)
	bagData := datagen.RandomNominal(1000, 10, 4, 0.2, 31)
	kmData := datagen.GaussianClusters(8, 8000, 8, 6, 19)
	return parallelReport{
		GoMaxProcs: n,
		Note:       "speedup = p1Ms/pNMs; on a 1-CPU host both levels run the sequential path",
		Kernels: []kernelResult{
			kernel("CrossValidate", "10-fold J48, 1200x10 nominal", func(p int) {
				_, err := classify.CrossValidateContext(context.Background(),
					func() classify.Classifier { return classify.NewJ48() },
					cvData, 10, 1, classify.Parallelism(p))
				if err != nil {
					log.Fatal(err)
				}
			}),
			kernel("Bagging", "16 random-tree members, 1000x10 nominal", func(p int) {
				bag := &classify.Bagging{Size: 16, Seed: 7, Parallelism: p}
				if err := bag.Train(bagData); err != nil {
					log.Fatal(err)
				}
			}),
			kernel("KMeans", "K=8 over 8000x8 numeric, 40 iterations", func(p int) {
				km := &cluster.KMeans{K: 8, MaxIter: 40, Seed: 3, Parallelism: p}
				if err := km.Build(kmData); err != nil {
					log.Fatal(err)
				}
			}),
		},
	}
}

// batchExperiment measures scoring throughput through a live session:
// the same rows labelled one envelope per instance over the XML path
// (client.Classify, N HTTP calls, N ARFF parses, N model lookups) and as
// one dmb1 columnar block (client.ClassifyBatch, one call, one decode,
// one batch scoring pass). Rows/sec at N=1 shows the fixed per-call
// floor; N=1024 shows the amortised fast path.
func batchExperiment(dep *core.Deployment) []batchResult {
	d := datagen.RandomNominal(1024, 10, 4, 0.2, 41)
	client := core.NewClient(dep.BaseURL)
	ctx := context.Background()
	token, err := client.CreateSession(ctx, core.TrainOptions{Dataset: d, Classifier: "J48"})
	if err != nil {
		log.Fatal(err)
	}
	defer client.CloseSession(ctx, token)

	// Reusable single-row dataset for the per-instance XML calls.
	one := d.CloneSchema()
	one.MustAdd(d.Instances[0])

	var out []batchResult
	for _, n := range []int{1, 64, 1024} {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		v := dataset.NewView(d, rows)
		runs := 3
		if n >= 1024 {
			runs = 1
		}

		if _, err := client.ClassifyBatch(ctx, token, v); err != nil { // warm-up
			log.Fatal(err)
		}
		began := time.Now()
		for r := 0; r < runs; r++ {
			labels, err := client.ClassifyBatch(ctx, token, v)
			if err != nil {
				log.Fatal(err)
			}
			if len(labels) != n {
				log.Fatalf("batch returned %d labels for %d rows", len(labels), n)
			}
		}
		dmb1Sec := time.Since(began).Seconds() / float64(runs)

		began = time.Now()
		for r := 0; r < runs; r++ {
			for i := 0; i < n; i++ {
				one.Instances[0] = d.Instances[i]
				if _, err := client.Classify(ctx, token, one); err != nil {
					log.Fatal(err)
				}
			}
		}
		xmlSec := time.Since(began).Seconds() / float64(runs)

		out = append(out, batchResult{
			BatchSize:      n,
			XMLRowsPerSec:  float64(n) / xmlSec,
			DMB1RowsPerSec: float64(n) / dmb1Sec,
			Speedup:        xmlSec / dmb1Sec,
		})
	}
	return out
}

// batchClusterExperiment measures clustering throughput both ways the
// services offer it: the textual composition (one assign call per row,
// each shipping the full build-set ARFF and rebuilding the model — what
// chaining XML services costs) against one clusterBatch call (build set
// once, all rows as a single dmb1 block, one columnar assignment pass).
func batchClusterExperiment(dep *core.Deployment) []batchResult {
	build := datagen.GaussianClusters(3, 96, 6, 3.0, 42)
	pool := datagen.GaussianClusters(3, 1024, 6, 3.0, 7)
	client := core.NewClient(dep.BaseURL)
	ctx := context.Background()
	buildARFF := arff.Format(build)
	url := dep.EndpointURL("Clusterer")

	// Reusable single-row dataset for the per-instance XML calls.
	one := pool.CloneSchema()
	one.MustAdd(pool.Instances[0])

	var out []batchResult
	for _, n := range []int{1, 64, 1024} {
		batch := pool.CloneSchema()
		for i := 0; i < n; i++ {
			batch.MustAdd(pool.Instances[i])
		}
		runs := 3
		if n >= 1024 {
			runs = 1
		}
		opts := core.ClusterBatchOptions{
			Batch: batch, Train: build,
			Clusterer: "SimpleKMeans", Options: map[string]string{"k": "3"},
		}

		if _, err := client.ClusterBatch(ctx, opts); err != nil { // warm-up
			log.Fatal(err)
		}
		began := time.Now()
		for r := 0; r < runs; r++ {
			res, err := client.ClusterBatch(ctx, opts)
			if err != nil {
				log.Fatal(err)
			}
			if len(res.Assignments) != n {
				log.Fatalf("clusterBatch returned %d assignments for %d rows", len(res.Assignments), n)
			}
		}
		dmb1Sec := time.Since(began).Seconds() / float64(runs)

		began = time.Now()
		for r := 0; r < runs; r++ {
			for i := 0; i < n; i++ {
				one.Instances[0] = batch.Instances[i]
				if _, err := soap.CallContext(ctx, url, "assign", map[string]string{
					"dataset":   buildARFF,
					"instances": arff.Format(one),
					"clusterer": "SimpleKMeans",
					"options":   "k=3",
				}); err != nil {
					log.Fatal(err)
				}
			}
		}
		xmlSec := time.Since(began).Seconds() / float64(runs)

		out = append(out, batchResult{
			BatchSize:      n,
			XMLRowsPerSec:  float64(n) / xmlSec,
			DMB1RowsPerSec: float64(n) / dmb1Sec,
			Speedup:        xmlSec / dmb1Sec,
		})
	}
	return out
}

// batchFilterExperiment measures one filter hop both ways: the textual
// apply op (format N rows as ARFF, parse the transformed ARFF reply —
// the serialisation a chained pipeline pays at every stage) against
// filterBatch moving the same rows as a dmb1 block each way.
func batchFilterExperiment(dep *core.Deployment) []batchResult {
	pool := datagen.GaussianClusters(3, 1024, 6, 3.0, 11)
	client := core.NewClient(dep.BaseURL)
	ctx := context.Background()
	url := dep.EndpointURL("Filter")

	var out []batchResult
	for _, n := range []int{1, 64, 1024} {
		batch := pool.CloneSchema()
		for i := 0; i < n; i++ {
			batch.MustAdd(pool.Instances[i])
		}
		runs := 5
		fopts := core.FilterBatchOptions{Dataset: batch, Filter: "Normalize"}

		if _, err := client.FilterBatch(ctx, fopts); err != nil { // warm-up
			log.Fatal(err)
		}
		began := time.Now()
		for r := 0; r < runs; r++ {
			res, err := client.FilterBatch(ctx, fopts)
			if err != nil {
				log.Fatal(err)
			}
			if res.Rows != n {
				log.Fatalf("filterBatch returned %d rows for %d", res.Rows, n)
			}
		}
		dmb1Sec := time.Since(began).Seconds() / float64(runs)

		began = time.Now()
		for r := 0; r < runs; r++ {
			reply, err := soap.CallContext(ctx, url, "apply", map[string]string{
				"dataset": arff.Format(batch),
				"filter":  "Normalize",
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := arff.ParseString(reply["arff"]); err != nil {
				log.Fatal(err)
			}
		}
		xmlSec := time.Since(began).Seconds() / float64(runs)

		out = append(out, batchResult{
			BatchSize:      n,
			XMLRowsPerSec:  float64(n) / xmlSec,
			DMB1RowsPerSec: float64(n) / dmb1Sec,
			Speedup:        xmlSec / dmb1Sec,
		})
	}
	return out
}

// storeExperiment measures the model store's economics per algorithm:
// gob encode/decode throughput for a trained snapshot, and the wall-clock
// of a warm resume (store Get + decode) against a cold retrain — the
// latency a failed-over replica saves on the first call of a resumed
// session.
func storeExperiment() []storeResult {
	dir, err := os.MkdirTemp("", "dmbench-store")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	trainData := datagen.RandomNominal(2000, 12, 4, 0.2, 23)
	const runs = 5
	row := func(name, work string, train func() classify.Classifier) storeResult {
		began := time.Now()
		var c classify.Classifier
		for i := 0; i < runs; i++ {
			c = train()
		}
		coldMs := float64(time.Since(began).Microseconds()) / 1e3 / runs

		blob, err := model.Marshal(c)
		if err != nil {
			log.Fatal(err)
		}
		began = time.Now()
		for i := 0; i < runs; i++ {
			if _, err := model.Marshal(c); err != nil {
				log.Fatal(err)
			}
		}
		encSec := time.Since(began).Seconds() / runs

		key := store.Key(name, nil, dataset.Digest(trainData), "")
		if err := st.Put(key, store.Meta{Algorithm: name, Kind: "classifier"}, blob); err != nil {
			log.Fatal(err)
		}
		began = time.Now()
		for i := 0; i < runs; i++ {
			got, _, err := st.Get(key)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := model.Unmarshal(got); err != nil {
				log.Fatal(err)
			}
		}
		warmMs := float64(time.Since(began).Microseconds()) / 1e3 / runs
		decSec := warmMs / 1e3 // Get is dwarfed by the decode; close enough for MB/s

		mb := float64(len(blob)) / (1 << 20)
		return storeResult{
			Algorithm:    name,
			Work:         work,
			SnapshotKB:   float64(len(blob)) / 1024,
			EncodeMBs:    mb / encSec,
			DecodeMBs:    mb / decSec,
			ColdTrainMs:  coldMs,
			WarmResumeMs: warmMs,
			Speedup:      coldMs / warmMs,
		}
	}
	return []storeResult{
		row("J48", "2000x12 nominal", func() classify.Classifier {
			j := classify.NewJ48()
			if err := j.Train(trainData); err != nil {
				log.Fatal(err)
			}
			return j
		}),
		row("RandomForest", "20 trees over 2000x12 nominal", func() classify.Classifier {
			f, err := classify.New("RandomForest")
			if err != nil {
				log.Fatal(err)
			}
			if err := f.Train(trainData); err != nil {
				log.Fatal(err)
			}
			return f
		}),
	}
}

// mineMs times fn over three runs and returns the mean in milliseconds.
func mineMs(fn func() error) float64 {
	const runs = 3
	began := time.Now()
	for i := 0; i < runs; i++ {
		if err := fn(); err != nil {
			log.Fatal(err)
		}
	}
	return float64(time.Since(began).Milliseconds()) / runs
}

func distincts(s dataset.Summary) string {
	var out []string
	for _, a := range s.PerAttribute {
		out = append(out, fmt.Sprint(a.Distinct))
	}
	return strings.Join(out, "/")
}

func underYes(j *classify.J48) string {
	root := j.Tree()
	for i, lbl := range root.Labels {
		if lbl == "yes" && root.Children[i].Attr >= 0 {
			return root.Children[i].AttrName
		}
	}
	return "(leaf)"
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// storeGCExperiment builds a store where half the indexed bytes are
// dead — the steady state of a deployment that retrains and supersedes
// models under churn — and times one forced Compact: how many bytes come
// back, and at what rewrite throughput.
func storeGCExperiment() storeGCResult {
	dir, err := os.MkdirTemp("", "dmbench-gc")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	const entries = 256
	const blobSize = 32 << 10
	rng := rand.New(rand.NewSource(7))
	blob := make([]byte, blobSize)
	keys := make([]string, entries)
	for i := range keys {
		rng.Read(blob)
		keys[i] = store.Key("J48", map[string]string{"i": fmt.Sprint(i)}, "dmbench-gc", "")
		if err := st.Put(keys[i], store.Meta{Algorithm: "J48", Kind: "classifier"}, blob); err != nil {
			log.Fatal(err)
		}
	}
	// Tombstone every other entry: ~half the store goes dead.
	for i := 0; i < entries; i += 2 {
		if err := st.Delete(keys[i]); err != nil {
			log.Fatal(err)
		}
	}
	before := st.Bytes()
	deadFrac := float64(st.DeadBytes()) / float64(before)
	began := time.Now()
	cs, err := st.Compact()
	if err != nil {
		log.Fatal(err)
	}
	ms := float64(time.Since(began).Microseconds()) / 1e3
	return storeGCResult{
		Entries:        entries,
		DeadFraction:   deadFrac,
		BytesBefore:    cs.BytesBefore,
		BytesAfter:     cs.BytesAfter,
		ReclaimedBytes: cs.ReclaimedBytes,
		CompactMs:      ms,
		ThroughputMBs:  float64(cs.BytesBefore) / (1 << 20) / (ms / 1e3),
	}
}

// invocationExperiment measures ns/invocation for both §4.5 backends.
func invocationExperiment(d *dataset.Dataset, n int) (serialisingNs, cachedNs float64) {
	build := func() (classify.Classifier, error) {
		j := classify.NewJ48()
		if err := j.Train(d); err != nil {
			return nil, err
		}
		return j, nil
	}
	probe := d.Instances[0]
	run := func(b harness.Backend) float64 {
		// Warm-up invocation performs the one-time build.
		if err := harness.Invoke(b, "j48", build, func(c classify.Classifier) error {
			_, err := classify.Predict(c, probe)
			return err
		}); err != nil {
			log.Fatal(err)
		}
		began := time.Now()
		for i := 0; i < n; i++ {
			if err := harness.Invoke(b, "j48", build, func(c classify.Classifier) error {
				_, err := classify.Predict(c, probe)
				return err
			}); err != nil {
				log.Fatal(err)
			}
		}
		return float64(time.Since(began).Nanoseconds()) / float64(n)
	}
	dir, err := os.MkdirTemp("", "dmbench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := model.NewStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	serialisingNs = run(&harness.SerialisingBackend{Store: store})
	cachedNs = run(harness.NewCachedBackend(8))
	return serialisingNs, cachedNs
}
