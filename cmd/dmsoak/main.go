// Command dmsoak is the replica-churn soak harness: the repeatable
// version of the "kill a replica mid-workload" drill the store's
// crash-safety work exists for. It boots N dmserver processes sharing
// one -store-dir behind a fresh TTL registry, drives a sustained mixed
// train / classify / classifyBatch workload through the typed
// core.Client with resilience pools, and — while the workload runs —
// SIGKILLs and restarts a random replica every -kill-every, deletes
// stored models to feed the replicas' background GC, and scrapes
// /metrics. Because session tokens are replica-portable and training is
// content-addressed, the acceptance bar is zero client-visible failures
// (retries and failover are allowed; errors surfacing to the caller are
// not).
//
// The run ends with a forced compaction of the shared store and a JSON
// report (-out, and always stdout): p50/p99/p999 latency per operation,
// error budget, store hit ratio, retrain count, breaker trips, and GC
// reclaim. -short is the deterministic CI shape: 2 replicas, ~6 s, a
// kill every 2.5 s.
//
// Usage:
//
//	dmsoak [-replicas 3] [-duration 60s] [-kill-every 10s] [-workers 4]
//	       [-seed 1] [-out report.json] [-short] [-v]
//	       [-dmserver path/to/dmserver] [-store-dir DIR]
//	       [-store-gc-interval 2s] [-store-gc-max-dead-bytes 32768]
//	       [-store-gc-max-dead-frac 0.5] [-store-gc-max-age 0]
//	       [-delete-every 2s] [-error-budget 0]
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/services"
	"repro/internal/store"
)

type config struct {
	Replicas     int           `json:"replicas"`
	Duration     time.Duration `json:"-"`
	KillEvery    time.Duration `json:"-"`
	Workers      int           `json:"workers"`
	Seed         int64         `json:"seed"`
	Short        bool          `json:"short"`
	DurationSecs float64       `json:"duration_seconds"`
	KillSecs     float64       `json:"kill_every_seconds"`

	dmserverBin string
	storeDir    string
	gcInterval  time.Duration
	gcMaxDead   int64
	gcMaxFrac   float64
	gcMaxAge    time.Duration
	deleteEvery time.Duration
	errorBudget int64
	out         string
	verbose     bool
}

// quantiles summarises one operation's latency samples.
type quantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P99   float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	Max   float64 `json:"max_ms"`
}

// summarize computes the latency quantiles of samples (milliseconds).
// The nearest-rank method over the sorted samples keeps it dependency-
// free and monotone: p50 <= p99 <= p999 <= max always holds.
func summarize(samples []float64) quantiles {
	if len(samples) == 0 {
		return quantiles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return quantiles{
		Count: len(s),
		P50:   rank(0.50),
		P99:   rank(0.99),
		P999:  rank(0.999),
		Max:   s[len(s)-1],
	}
}

// report is the JSON document dmsoak emits. Key names are load-bearing:
// scripts/smoke.sh and verify.sh grep for "failed", "kills" and
// "reclaimed_bytes".
type report struct {
	Config   config `json:"config"`
	Requests struct {
		Total  int64            `json:"total"`
		Failed int64            `json:"failed"`
		ByOp   map[string]int64 `json:"by_op"`
	} `json:"requests"`
	LatencyMS map[string]quantiles `json:"latency_ms"`
	Churn     struct {
		Kills    int64 `json:"kills"`
		Restarts int64 `json:"restarts"`
	} `json:"churn"`
	Store struct {
		Hits       int64   `json:"hits"`
		Misses     int64   `json:"misses"`
		HitRatio   float64 `json:"hit_ratio"`
		Retrains   int64   `json:"retrains"`
		LiveBytes  int64   `json:"live_bytes"`
		DeadBytes  int64   `json:"dead_bytes"`
		Generation int64   `json:"generation"`
	} `json:"store"`
	Resilience struct {
		Retries      int64 `json:"retries"`
		BreakerOpens int64 `json:"breaker_opens"`
	} `json:"resilience"`
	GC struct {
		Runs                 int64 `json:"runs"`
		ReclaimedBytes       int64 `json:"reclaimed_bytes"`
		FinalCompactReclaims int64 `json:"final_compact_reclaimed_bytes"`
		PostGCBytes          int64 `json:"post_gc_bytes"`
	} `json:"gc"`
	ErrorBudgetOK bool `json:"error_budget_ok"`
}

// ---------------------------------------------------------------------------
// Fleet: N dmserver processes on one store directory.

type replica struct {
	slot        int
	incarnation int
	cmd         *exec.Cmd
	baseURL     string
}

type fleet struct {
	cfg    config
	regURL string

	mu    sync.Mutex
	slots []*replica

	kills    atomic.Int64
	restarts atomic.Int64
}

// start boots a dmserver into slot and waits for its listen line.
func (f *fleet) start(slot, incarnation int) (*replica, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-backend", "cached",
		"-store-dir", f.cfg.storeDir,
		"-publish", f.regURL,
		"-heartbeat", "300ms",
		"-drain-grace", "1s",
		"-log-level", "warn",
	}
	if f.cfg.gcInterval > 0 {
		args = append(args,
			"-store-gc-interval", f.cfg.gcInterval.String(),
			"-store-gc-max-dead-bytes", fmt.Sprint(f.cfg.gcMaxDead),
			"-store-gc-max-dead-frac", fmt.Sprint(f.cfg.gcMaxFrac),
		)
		if f.cfg.gcMaxAge > 0 {
			args = append(args, "-store-gc-max-age", f.cfg.gcMaxAge.String())
		}
	}
	cmd := exec.Command(f.cfg.dmserverBin, args...)
	if f.cfg.verbose {
		cmd.Stderr = os.Stderr
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(stdout)
	baseURL := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "dmserver listening on "); ok {
			baseURL = strings.TrimSpace(strings.SplitN(rest, " ", 2)[0])
			break
		}
	}
	if baseURL == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("replica %d.%d exited before listening", slot, incarnation)
	}
	// One goroutine per process drains the remaining stdout and reaps it;
	// calling Wait here (and nowhere else) keeps the pipe teardown safe.
	go func() {
		_, _ = io.Copy(io.Discard, stdout)
		_ = cmd.Wait()
	}()
	r := &replica{slot: slot, incarnation: incarnation, cmd: cmd, baseURL: baseURL}
	// The registry learns about the replica on its own publish; wait for
	// health so the first workload requests do not race the boot.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(r.baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return r, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return r, nil
}

func (f *fleet) boot() error {
	f.slots = make([]*replica, f.cfg.Replicas)
	for i := range f.slots {
		r, err := f.start(i, 0)
		if err != nil {
			return err
		}
		f.slots[i] = r
	}
	return nil
}

// killRestart SIGKILLs the replica in slot and boots a fresh
// incarnation in its place — the churn loop's single step.
func (f *fleet) killRestart(slot int) {
	f.mu.Lock()
	old := f.slots[slot]
	f.mu.Unlock()
	_ = old.cmd.Process.Kill()
	f.kills.Add(1)
	r, err := f.start(slot, old.incarnation+1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmsoak: restart slot %d: %v\n", slot, err)
		return
	}
	f.mu.Lock()
	f.slots[slot] = r
	f.mu.Unlock()
	f.restarts.Add(1)
}

func (f *fleet) live() []*replica {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*replica, 0, len(f.slots))
	for _, r := range f.slots {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

func (f *fleet) stopAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.slots {
		if r != nil {
			_ = r.cmd.Process.Kill()
		}
	}
}

// ---------------------------------------------------------------------------
// Metrics scraper: replicas die mid-run, so counters are accumulated
// per slot:incarnation and summed at the end. A SIGKILLed incarnation
// contributes its last successful scrape — a sub-second undercount that
// is fine for a soak report.

type scraper struct {
	mu   sync.Mutex
	last map[string]map[string]int64 // "slot:inc" -> counter name -> value
}

func newScraper() *scraper { return &scraper{last: map[string]map[string]int64{}} }

func (s *scraper) scrape(f *fleet) {
	for _, r := range f.live() {
		resp, err := http.Get(r.baseURL + "/metrics")
		if err != nil {
			continue
		}
		var snap obs.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			continue
		}
		key := fmt.Sprintf("%d:%d", r.slot, r.incarnation)
		s.mu.Lock()
		s.last[key] = snap.Counters
		s.mu.Unlock()
	}
}

// total sums a counter across every incarnation ever scraped.
func (s *scraper) total(counter string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, counters := range s.last {
		n += counters[counter]
	}
	return n
}

// ---------------------------------------------------------------------------
// Workload.

type opSample struct {
	op string
	ms float64
}

type workload struct {
	cfg      config
	client   *core.Client
	sessPool *resilience.Pool
	clfPool  *resilience.Pool
	policy   func(worker int) *resilience.Policy

	token   string
	unl     *dataset.Dataset // unlabelled BreastCancer rows for classify
	view    *dataset.View    // columnar selection for classifyBatch
	trains  []core.TrainOptions
	batches []*dataset.View

	total  atomic.Int64
	failed atomic.Int64
	byOp   sync.Map // op -> *atomic.Int64
}

func (w *workload) count(op string) {
	v, _ := w.byOp.LoadOrStore(op, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

// pickSlot is the churn loop's deterministic choice of victim.
func pickSlot(rng *rand.Rand, n int) int { return rng.Intn(n) }

// worker runs the op mix until ctx ends, recording every completed
// operation's latency and every client-visible failure.
func (w *workload) worker(ctx context.Context, id int, samples *[]opSample) {
	rng := rand.New(rand.NewSource(w.cfg.Seed + 1000*int64(id)))
	pol := w.policy(id)
	for ctx.Err() == nil {
		roll := rng.Float64()
		var op string
		var err error
		start := time.Now()
		switch {
		case roll < 0.2:
			op = "train"
			to := w.trains[rng.Intn(len(w.trains))]
			_, err = w.clfPool.Do(ctx, pol, func(ctx context.Context, ep string) error {
				_, terr := w.client.TrainAt(ctx, ep, to)
				return terr
			})
		case roll < 0.6:
			op = "classify"
			err = w.classify(ctx, pol)
		default:
			op = "classify_batch"
			err = w.classifyBatch(ctx, pol, w.batches[rng.Intn(len(w.batches))])
		}
		if ctx.Err() != nil {
			return // deadline hit mid-call: not a workload failure
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		w.total.Add(1)
		w.count(op)
		*samples = append(*samples, opSample{op: op, ms: ms})
		if err != nil {
			w.failed.Add(1)
			fmt.Fprintf(os.Stderr, "dmsoak: worker %d %s failed: %v\n", id, op, err)
		}
		time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
	}
}

func (w *workload) classify(ctx context.Context, pol *resilience.Policy) error {
	_, err := w.sessPool.Do(ctx, pol, func(ctx context.Context, ep string) error {
		_, cerr := w.client.ClassifyAt(ctx, ep, w.token, w.unl)
		return cerr
	})
	return err
}

func (w *workload) classifyBatch(ctx context.Context, pol *resilience.Policy, v *dataset.View) error {
	_, err := w.sessPool.Do(ctx, pol, func(ctx context.Context, ep string) error {
		_, cerr := w.client.ClassifyBatchAt(ctx, ep, w.token, v)
		return cerr
	})
	return err
}

// ---------------------------------------------------------------------------

func main() {
	cfg := parseFlags(os.Args[1:])
	rep, exit := run(cfg)
	if rep != nil {
		js, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(js))
		if cfg.out != "" {
			if err := os.WriteFile(cfg.out, append(js, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dmsoak: writing %s: %v\n", cfg.out, err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

func parseFlags(argv []string) config {
	var cfg config
	fs := flag.NewFlagSet("dmsoak", flag.ExitOnError)
	fs.IntVar(&cfg.Replicas, "replicas", 3, "dmserver replicas sharing the store directory")
	fs.DurationVar(&cfg.Duration, "duration", 60*time.Second, "workload duration")
	fs.DurationVar(&cfg.KillEvery, "kill-every", 10*time.Second, "SIGKILL+restart a random replica at this interval (0 = no churn)")
	fs.IntVar(&cfg.Workers, "workers", 4, "concurrent workload workers")
	fs.Int64Var(&cfg.Seed, "seed", 1, "seed for the churn victim picker and the workers' op mix")
	fs.BoolVar(&cfg.Short, "short", false, "deterministic CI shape: 2 replicas, ~6s, kill every 2.5s")
	fs.BoolVar(&cfg.verbose, "v", false, "pass replica stderr through")
	fs.StringVar(&cfg.dmserverBin, "dmserver", "", "prebuilt dmserver binary (default: go build it into a temp dir)")
	fs.StringVar(&cfg.storeDir, "store-dir", "", "shared model store directory (default: a temp dir)")
	fs.DurationVar(&cfg.gcInterval, "store-gc-interval", 2*time.Second, "replicas' background GC sweep interval (0 = replicas run no GC)")
	fs.Int64Var(&cfg.gcMaxDead, "store-gc-max-dead-bytes", 32*1024, "replicas compact once dead bytes exceed this")
	fs.Float64Var(&cfg.gcMaxFrac, "store-gc-max-dead-frac", 0.5, "replicas compact once the dead fraction exceeds this")
	fs.DurationVar(&cfg.gcMaxAge, "store-gc-max-age", 0, "replicas expire stored models older than this (0 = keep)")
	fs.DurationVar(&cfg.deleteEvery, "delete-every", 2*time.Second, "delete stored train-family models at this interval to feed GC (0 = off)")
	fs.Int64Var(&cfg.errorBudget, "error-budget", 0, "max client-visible failures before exit code 1")
	fs.StringVar(&cfg.out, "out", "", "also write the JSON report here")
	_ = fs.Parse(argv)
	if cfg.Short {
		cfg.Replicas = 2
		cfg.Duration = 6 * time.Second
		cfg.KillEvery = 2500 * time.Millisecond
		cfg.Workers = 2
		cfg.gcInterval = time.Second
		cfg.deleteEvery = time.Second
		// Models are a few hundred bytes; drop the byte bound so the
		// replicas' GC demonstrably fires inside the short window.
		cfg.gcMaxDead = 1024
		cfg.gcMaxFrac = 0.2
	}
	cfg.DurationSecs = cfg.Duration.Seconds()
	cfg.KillSecs = cfg.KillEvery.Seconds()
	return cfg
}

func run(cfg config) (*report, int) {
	fail := func(err error) (*report, int) {
		fmt.Fprintf(os.Stderr, "dmsoak: %v\n", err)
		return nil, 1
	}

	if cfg.storeDir == "" {
		dir, err := os.MkdirTemp("", "dmsoak-store")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(dir)
		cfg.storeDir = dir
	}
	if cfg.dmserverBin == "" {
		bin, cleanup, err := buildDmserver()
		if err != nil {
			return fail(err)
		}
		defer cleanup()
		cfg.dmserverBin = bin
	}

	// Fresh TTL registry at the root of its own listener — the external
	// dmregistry shape, in-process.
	reg := registry.NewWithTTL(2 * time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer ln.Close()
	regSrv := &http.Server{Handler: reg.Handler()}
	go regSrv.Serve(ln)
	defer regSrv.Close()
	sweepStop := make(chan struct{})
	defer close(sweepStop)
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				reg.Sweep()
			case <-sweepStop:
				return
			}
		}
	}()
	regURL := "http://" + ln.Addr().String()

	f := &fleet{cfg: cfg, regURL: regURL}
	fmt.Fprintf(os.Stderr, "dmsoak: booting %d replicas on %s (registry %s)\n",
		cfg.Replicas, cfg.storeDir, regURL)
	if err := f.boot(); err != nil {
		f.stopAll()
		return fail(err)
	}
	defer f.stopAll()

	regClient := &registry.Client{BaseURL: regURL}
	sessPool := resilience.NewPool(nil,
		resilience.WithSource(regClient.EndpointSource("Session", "")),
		resilience.WithRefreshInterval(500*time.Millisecond))
	clfPool := resilience.NewPool(nil,
		resilience.WithSource(regClient.EndpointSource("Classifier", "")),
		resilience.WithRefreshInterval(500*time.Millisecond))

	w := &workload{
		cfg:      cfg,
		client:   core.NewClient("http://unused.invalid"),
		sessPool: sessPool,
		clfPool:  clfPool,
		policy: func(worker int) *resilience.Policy {
			return &resilience.Policy{
				MaxAttempts: 8,
				BackoffBase: 40 * time.Millisecond,
				BackoffMax:  600 * time.Millisecond,
				Seed:        cfg.Seed + int64(worker),
			}
		},
	}

	// Session family: IBk on BreastCancer. The retention worker below
	// deletes every non-IBk model, so keeping the session's algorithm
	// distinct guarantees deletes can never break session restores — the
	// zero-failure bar stays honest while GC still gets fed.
	full := datagen.BreastCancer()
	w.unl = full.Clone()
	for _, in := range w.unl.Instances {
		in.Values[w.unl.ClassIndex] = dataset.Missing
	}
	rows := make([]int, 0, 64)
	for i := 0; i < w.unl.NumInstances() && i < 64; i++ {
		rows = append(rows, i)
	}
	w.view = dataset.NewView(w.unl, rows)
	w.batches = []*dataset.View{w.view, dataset.All(w.unl)}
	// Train family: repeatedly re-trained (content-addressed → store
	// hits) and repeatedly deleted (→ dead bytes → replica GC).
	for _, d := range []*dataset.Dataset{datagen.Weather(), datagen.WeatherNumeric(), datagen.ContactLenses()} {
		for _, algo := range []string{"J48", "NaiveBayes"} {
			w.trains = append(w.trains, core.TrainOptions{Dataset: d, Classifier: algo})
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	// Warm up the shared session before churn starts.
	warmCtx, warmCancel := context.WithTimeout(ctx, 30*time.Second)
	_, err = sessPool.Do(warmCtx, w.policy(-1), func(ctx context.Context, ep string) error {
		token, serr := w.client.CreateSessionAt(ctx, ep, core.TrainOptions{
			Dataset: full, Classifier: "IBk",
		})
		if serr == nil {
			w.token = token
		}
		return serr
	})
	warmCancel()
	if err != nil {
		return fail(fmt.Errorf("warm-up createSession: %w", err))
	}

	var wg sync.WaitGroup

	// Churn loop: seeded victim picker, SIGKILL + restart.
	if cfg.KillEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed))
			t := time.NewTicker(cfg.KillEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					slot := pickSlot(rng, cfg.Replicas)
					fmt.Fprintf(os.Stderr, "dmsoak: SIGKILL slot %d\n", slot)
					f.killRestart(slot)
				}
			}
		}()
	}

	// Retention worker: its own store handle deletes train-family
	// models so superseded+tombstoned bytes accumulate and the
	// replicas' -store-gc-* sweeps have something to reclaim.
	if cfg.deleteEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, serr := store.Open(cfg.storeDir, store.WithObs(obs.NewRegistry()))
			if serr != nil {
				fmt.Fprintf(os.Stderr, "dmsoak: retention worker: %v\n", serr)
				return
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + 7))
			t := time.NewTicker(cfg.deleteEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					_ = s.Refresh()
					for _, e := range s.List() {
						if e.Meta.Algorithm != "IBk" && rng.Float64() < 0.7 {
							_ = s.Delete(e.Key)
						}
					}
				}
			}
		}()
	}

	// Metrics scraper.
	sc := newScraper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				sc.scrape(f)
			}
		}
	}()

	// Workers.
	samples := make([][]opSample, cfg.Workers)
	var ww sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		ww.Add(1)
		go func(id int) {
			defer ww.Done()
			w.worker(ctx, id, &samples[id])
		}(i)
	}
	ww.Wait()
	cancel()
	wg.Wait()

	// Final scrape against whatever is still alive, then stop the fleet
	// so the closing compaction sees a quiet directory.
	sc.scrape(f)
	f.stopAll()
	time.Sleep(200 * time.Millisecond)

	rep := &report{Config: cfg}
	rep.Requests.Total = w.total.Load()
	rep.Requests.Failed = w.failed.Load()
	rep.Requests.ByOp = map[string]int64{}
	w.byOp.Range(func(k, v any) bool {
		rep.Requests.ByOp[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	perOp := map[string][]float64{}
	var all []float64
	for _, s := range samples {
		for _, smp := range s {
			perOp[smp.op] = append(perOp[smp.op], smp.ms)
			all = append(all, smp.ms)
		}
	}
	rep.LatencyMS = map[string]quantiles{"all": summarize(all)}
	for op, v := range perOp {
		rep.LatencyMS[op] = summarize(v)
	}
	rep.Churn.Kills = f.kills.Load()
	rep.Churn.Restarts = f.restarts.Load()
	rep.Store.Hits = sc.total("store_hits_total")
	rep.Store.Misses = sc.total("store_misses_total")
	if t := rep.Store.Hits + rep.Store.Misses; t > 0 {
		rep.Store.HitRatio = float64(rep.Store.Hits) / float64(t)
	}
	rep.Store.Retrains = sc.total("harness_builds_total")
	rep.Resilience.Retries = obs.Default.Snapshot().Counters["resilience_retries_total"]
	for name, v := range obs.Default.Snapshot().Counters {
		if strings.HasPrefix(name, "resilience_breaker_opens_total") {
			rep.Resilience.BreakerOpens += v
		}
	}
	rep.GC.Runs = sc.total("store_gc_runs_total")
	rep.GC.ReclaimedBytes = sc.total("store_gc_reclaimed_bytes_total")

	// Closing compaction: the fleet is dead (flocks released by the
	// kernel), so a fresh handle compacts whatever the run left behind
	// and proves every live record survived the churn.
	s, err := store.Open(cfg.storeDir, store.WithObs(obs.NewRegistry()))
	if err != nil {
		return fail(fmt.Errorf("post-run store open: %w", err))
	}
	st, err := s.Compact()
	if err != nil {
		s.Close()
		return fail(fmt.Errorf("post-run compaction: %w", err))
	}
	rep.GC.FinalCompactReclaims = st.ReclaimedBytes
	rep.GC.ReclaimedBytes += st.ReclaimedBytes
	rep.GC.PostGCBytes = s.Bytes()
	rep.Store.LiveBytes = s.LiveBytes()
	rep.Store.DeadBytes = s.DeadBytes()
	rep.Store.Generation = s.Generation()
	s.Close()

	rep.ErrorBudgetOK = rep.Requests.Failed <= cfg.errorBudget
	exit := 0
	if !rep.ErrorBudgetOK {
		exit = 1
	}
	return rep, exit
}

// buildDmserver compiles cmd/dmserver into a temp dir when the caller
// did not hand us a binary.
func buildDmserver() (bin string, cleanup func(), err error) {
	dir, err := os.MkdirTemp("", "dmsoak-bin")
	if err != nil {
		return "", nil, err
	}
	bin = filepath.Join(dir, "dmserver")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/dmserver")
	out, err := cmd.CombinedOutput()
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("building dmserver: %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

// keyFor computes the content address a train-family option lands on —
// exposed for tests pinning the retention worker's reach.
func keyFor(o core.TrainOptions) string {
	class := ""
	if ca := o.Dataset.ClassAttribute(); ca != nil {
		class = ca.Name
	}
	return services.InstanceKey(o.Classifier, o.Options, o.Dataset, class)
}
