package main

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
)

func TestSummarizeQuantiles(t *testing.T) {
	if q := summarize(nil); q.Count != 0 || q.Max != 0 {
		t.Fatalf("empty samples: %+v", q)
	}
	// 1..1000 ms: nearest-rank quantiles are exact.
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i + 1)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
	q := summarize(samples)
	if q.Count != 1000 {
		t.Fatalf("count = %d", q.Count)
	}
	if q.P50 != 500 || q.P99 != 990 || q.P999 != 999 || q.Max != 1000 {
		t.Fatalf("quantiles = %+v", q)
	}
	if !(q.P50 <= q.P99 && q.P99 <= q.P999 && q.P999 <= q.Max) {
		t.Fatalf("quantiles not monotone: %+v", q)
	}
	// A single sample lands everywhere.
	q = summarize([]float64{7})
	if q.P50 != 7 || q.P999 != 7 || q.Max != 7 {
		t.Fatalf("single sample: %+v", q)
	}
}

// TestReportJSONKeys pins the key names scripts/smoke.sh and verify.sh
// grep for: a rename here silently breaks the churn phase's assertions.
func TestReportJSONKeys(t *testing.T) {
	var rep report
	rep.Config = parseFlags([]string{"-short"})
	rep.Churn.Kills = 2
	rep.GC.ReclaimedBytes = 4096
	rep.LatencyMS = map[string]quantiles{"all": summarize([]float64{1, 2, 3})}
	js, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"failed": 0`, `"kills": 2`, `"reclaimed_bytes": 4096`,
		`"hit_ratio"`, `"p99_ms"`, `"p999_ms"`, `"error_budget_ok"`,
	} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("report JSON lost %q:\n%s", want, js)
		}
	}
	var back report
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Churn.Kills != 2 || back.GC.ReclaimedBytes != 4096 {
		t.Fatalf("round trip lost values: %+v", back)
	}
}

// TestPickSlotDeterministic: same seed, same victim sequence — the
// property that makes a soak run reproducible.
func TestPickSlotDeterministic(t *testing.T) {
	seq := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		out := make([]int, 32)
		for i := range out {
			out[i] = pickSlot(rng, 3)
			if out[i] < 0 || out[i] > 2 {
				t.Fatalf("slot out of range: %d", out[i])
			}
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestScraperSumsAcrossIncarnations(t *testing.T) {
	sc := newScraper()
	sc.last["0:0"] = map[string]int64{"store_hits_total": 5, "store_gc_runs_total": 1}
	sc.last["0:1"] = map[string]int64{"store_hits_total": 3}
	sc.last["1:0"] = map[string]int64{"store_hits_total": 2, "store_gc_runs_total": 2}
	if got := sc.total("store_hits_total"); got != 10 {
		t.Fatalf("hits = %d, want 10 (summed across incarnations)", got)
	}
	if got := sc.total("store_gc_runs_total"); got != 3 {
		t.Fatalf("gc runs = %d, want 3", got)
	}
	if got := sc.total("no_such_counter"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

// TestShortModeShape pins the CI shape so verify.sh's runtime stays
// bounded.
func TestShortModeShape(t *testing.T) {
	cfg := parseFlags([]string{"-short"})
	if cfg.Replicas != 2 || cfg.Workers != 2 {
		t.Fatalf("short shape: %+v", cfg)
	}
	if cfg.Duration > 10*time.Second {
		t.Fatalf("short duration too long for CI: %s", cfg.Duration)
	}
	if cfg.KillEvery >= cfg.Duration {
		t.Fatalf("short mode never kills: kill-every %s >= duration %s", cfg.KillEvery, cfg.Duration)
	}
}

// TestKeyForDisjointFromSession: the retention worker deletes every
// non-IBk model; the session family must therefore never collide with a
// train-family key, whatever the digests do.
func TestKeyForDisjointFromSession(t *testing.T) {
	session := keyFor(core.TrainOptions{Dataset: datagen.BreastCancer(), Classifier: "IBk"})
	seen := map[string]bool{session: true}
	for _, o := range []core.TrainOptions{
		{Dataset: datagen.Weather(), Classifier: "J48"},
		{Dataset: datagen.Weather(), Classifier: "NaiveBayes"},
		{Dataset: datagen.ContactLenses(), Classifier: "J48"},
		{Dataset: datagen.WeatherNumeric(), Classifier: "NaiveBayes"},
	} {
		k := keyFor(o)
		if seen[k] {
			t.Fatalf("key collision for %s on %s", o.Classifier, o.Dataset.Relation)
		}
		seen[k] = true
	}
}
