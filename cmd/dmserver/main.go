// Command dmserver hosts the toolkit's data-mining Web Services — the
// Tomcat/Axis role of the paper's deployment (§4.5, §5.1). Every service is
// served under /services/<name> (POST = SOAP, GET = WSDL) together with a
// UDDI-style registry under /registry.
//
// Usage:
//
//	dmserver [-addr 127.0.0.1:8334] [-backend cached|serialising] [-cache 64] [-store DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8334", "listen address")
	backendKind := flag.String("backend", "cached",
		"instance management strategy: cached (the §4.5 harness) or serialising (naive per-call round trip)")
	cacheSize := flag.Int("cache", 64, "instance pool bound for the cached backend")
	storeDir := flag.String("store", "", "model store directory (default: a temp dir; required meaningfully for -backend serialising)")
	logLevel := flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("dmserver: %v", err)
	}
	obs.SetDefaultLevel(lvl)

	var backend harness.Backend
	switch *backendKind {
	case "cached":
		backend = harness.NewCachedBackend(*cacheSize)
	case "serialising":
		dir := *storeDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "dmserver-models")
			if err != nil {
				log.Fatalf("dmserver: %v", err)
			}
		}
		store, err := model.NewStore(dir)
		if err != nil {
			log.Fatalf("dmserver: %v", err)
		}
		backend = &harness.SerialisingBackend{Store: store}
	default:
		log.Fatalf("dmserver: unknown backend %q", *backendKind)
	}

	d, err := core.Deploy(*addr, backend)
	if err != nil {
		log.Fatalf("dmserver: %v", err)
	}
	fmt.Printf("dmserver listening on %s (backend: %s)\n", d.BaseURL, *backendKind)
	fmt.Printf("registry inquiry: %s/inquiry\n", d.RegistryURL())
	fmt.Printf("metrics: %s/metrics  health: %s/healthz\n", d.BaseURL, d.BaseURL)
	for _, name := range d.ServiceNames() {
		fmt.Printf("  service %-20s %s\n", name, d.WSDLURL(name))
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if err := d.Close(); err != nil {
		log.Fatalf("dmserver: shutdown: %v", err)
	}
}
