// Command dmserver hosts the toolkit's data-mining Web Services — the
// Tomcat/Axis role of the paper's deployment (§4.5, §5.1). Every service is
// served under /services/<name> (POST = SOAP, GET = WSDL) together with a
// UDDI-style registry under /registry.
//
// Usage:
//
//	dmserver [-addr 127.0.0.1:8334] [-backend cached|serialising] [-cache 64] [-store DIR]
//	         [-store-dir DIR]
//	         [-store-gc-interval 30s] [-store-gc-max-dead-bytes N]
//	         [-store-gc-max-dead-frac 0.5] [-store-gc-max-age 24h]
//	         [-publish URL] [-heartbeat 5s] [-ttl 15s]
//	         [-max-inflight 64] [-queue 128] [-drain-grace 10s]
//	         [-chaos 'fault=0.3;op=classifyInstance,latency=200ms'] [-chaos-seed 1] [-chaos-header]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8334", "listen address")
	backendKind := flag.String("backend", "cached",
		"instance management strategy: cached (the §4.5 harness) or serialising (naive per-call round trip)")
	cacheSize := flag.Int("cache", 64, "instance pool bound for the cached backend")
	storeDir := flag.String("store", "", "model store directory (default: a temp dir; required meaningfully for -backend serialising)")
	durableDir := flag.String("store-dir", "", "content-addressed model store directory for the cached backend; share it between replicas to make session tokens resumable on any of them")
	gcInterval := flag.Duration("store-gc-interval", 0, "sweep the model store for compaction at this interval (0 = no background GC; needs -store-dir and at least one -store-gc-max-* bound)")
	gcMaxDeadBytes := flag.Int64("store-gc-max-dead-bytes", 0, "compact once superseded/tombstoned bytes exceed this (0 = no byte bound)")
	gcMaxDeadFrac := flag.Float64("store-gc-max-dead-frac", 0, "compact once the dead fraction of indexed bytes exceeds this (0 = no fraction bound)")
	gcMaxAge := flag.Duration("store-gc-max-age", 0, "retire stored models older than this during compaction (0 = keep forever)")
	logLevel := flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
	publishURL := flag.String("publish", "", "external registry base URL to publish this host's services to (e.g. http://127.0.0.1:8335)")
	heartbeat := flag.Duration("heartbeat", 0, "re-publish services at this interval (0 = publish once at startup)")
	ttl := flag.Duration("ttl", 0, "age out own-registry entries not re-published within this window (0 = never)")
	maxInFlight := flag.Int("max-inflight", 64, "concurrently executing SOAP requests before new ones queue")
	queueDepth := flag.Int("queue", 128, "requests waiting for an in-flight slot before shedding (negative = shed immediately at capacity)")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "how long shutdown waits for in-flight requests after it stops admitting")
	chaosRules := flag.String("chaos", "", "fault-injection rules for /services/, e.g. 'fault=0.3;op=classifyInstance,latency=200ms'")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic chaos dice")
	chaosHeader := flag.Bool("chaos-header", false, "honor the X-DM-Chaos request header from any peer (default: loopback peers only)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("dmserver: %v", err)
	}
	obs.SetDefaultLevel(lvl)

	var backend harness.Backend
	switch *backendKind {
	case "cached":
		backend = harness.NewCachedBackend(*cacheSize)
	case "serialising":
		dir := *storeDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "dmserver-models")
			if err != nil {
				log.Fatalf("dmserver: %v", err)
			}
		}
		store, err := model.NewStore(dir)
		if err != nil {
			log.Fatalf("dmserver: %v", err)
		}
		backend = &harness.SerialisingBackend{Store: store}
	default:
		log.Fatalf("dmserver: unknown backend %q", *backendKind)
	}

	opts := []core.Option{
		core.WithAdmission(*maxInFlight, *queueDepth),
		core.WithDrainGrace(*drainGrace),
	}
	if *durableDir != "" {
		if *backendKind != "cached" {
			log.Fatalf("dmserver: -store-dir requires -backend cached")
		}
		opts = append(opts, core.WithModelStore(*durableDir))
	}
	if *gcInterval > 0 {
		if *durableDir == "" {
			log.Fatalf("dmserver: -store-gc-interval requires -store-dir")
		}
		pol := store.GCPolicy{
			MaxDeadBytes:    *gcMaxDeadBytes,
			MaxDeadFraction: *gcMaxDeadFrac,
			MaxAge:          *gcMaxAge,
		}
		opts = append(opts, core.WithStoreGC(*gcInterval, pol))
	}
	if *chaosRules != "" {
		rules, err := chaos.ParseRules(*chaosRules)
		if err != nil {
			log.Fatalf("dmserver: %v", err)
		}
		inj := chaos.New(*chaosSeed, rules...)
		inj.AllowHeaderFromAnyPeer = *chaosHeader
		opts = append(opts, core.WithChaos(inj))
		fmt.Printf("dmserver: CHAOS ENABLED (%d rule(s), seed %d)\n", len(rules), *chaosSeed)
	}
	if *heartbeat > 0 || *ttl > 0 {
		beat := *heartbeat
		if beat <= 0 {
			beat = *ttl / 3
			if beat <= 0 {
				beat = 5 * time.Second
			}
		}
		opts = append(opts, core.WithHeartbeat(beat, *ttl))
	}
	if *publishURL != "" {
		opts = append(opts, core.WithExternalRegistry(*publishURL))
	}

	d, err := core.Deploy(*addr, backend, opts...)
	if err != nil {
		log.Fatalf("dmserver: %v", err)
	}
	fmt.Printf("dmserver listening on %s (backend: %s)\n", d.BaseURL, *backendKind)
	if *durableDir != "" {
		fmt.Printf("model store: %s\n", *durableDir)
	}
	if *publishURL != "" {
		fmt.Printf("publishing services to %s\n", *publishURL)
	}
	fmt.Printf("registry inquiry: %s/inquiry\n", d.RegistryURL())
	fmt.Printf("metrics: %s/metrics  health: %s/healthz\n", d.BaseURL, d.BaseURL)
	for _, name := range d.ServiceNames() {
		fmt.Printf("  service %-20s %s\n", name, d.WSDLURL(name))
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("dmserver: draining (grace %s)\n", *drainGrace)
	if err := d.Close(); err != nil {
		log.Fatalf("dmserver: shutdown: %v", err)
	}
	fmt.Println("dmserver: drained, bye")
}
