// Command dmflow executes a workflow XML file — the headless enactor
// counterpart of pressing "run" in the composition workspace. Progress
// events (started / finished / failed / retried) stream to stderr; final
// task outputs print to stdout.
//
// Usage:
//
//	dmflow workflow.xml
//	dmflow -dax workflow.xml      # print the GriPhyN DAX export instead
//	dmflow -sequential workflow.xml
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/workflow"
)

func main() {
	dax := flag.Bool("dax", false, "print the DAX export of the workflow instead of running it")
	sequential := flag.Bool("sequential", false, "disable parallel task execution")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatalf("dmflow: %v", err)
	}
	g, err := workflow.UnmarshalXML(f)
	f.Close()
	if err != nil {
		log.Fatalf("dmflow: %v", err)
	}
	if *dax {
		doc, err := workflow.MarshalDAX(g)
		if err != nil {
			log.Fatalf("dmflow: %v", err)
		}
		os.Stdout.Write(doc)
		return
	}
	eng := workflow.NewEngine()
	eng.Parallel = !*sequential
	eng.Monitor = func(ev workflow.Event) {
		if ev.Err != nil {
			fmt.Fprintf(os.Stderr, "[%s] %s (%s) attempt %d: %v\n",
				ev.Kind, ev.TaskID, ev.UnitName, ev.Attempt, ev.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "[%s] %s (%s)\n", ev.Kind, ev.TaskID, ev.UnitName)
	}
	res, err := eng.Run(context.Background(), g)
	if err != nil {
		log.Fatalf("dmflow: %v", err)
	}
	ids := make([]string, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ports := make([]string, 0, len(res.Outputs[id]))
		for p := range res.Outputs[id] {
			ports = append(ports, p)
		}
		sort.Strings(ports)
		for _, p := range ports {
			fmt.Printf("=== %s.%s ===\n%s\n", id, p, res.Outputs[id][p])
		}
	}
}
