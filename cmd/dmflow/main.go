// Command dmflow executes a workflow XML file — the headless enactor
// counterpart of pressing "run" in the composition workspace. Progress
// events (started / finished / failed / retried / replayed) stream to
// stderr; final task outputs print to stdout.
//
// With -journal the run is durable: every completed step is fsynced to a
// step journal, and re-running the same command after a crash (-resume)
// replays the journaled steps instead of re-invoking their services.
//
// Usage:
//
//	dmflow workflow.xml
//	dmflow -dax workflow.xml      # print the GriPhyN DAX export instead
//	dmflow -sequential workflow.xml
//	dmflow -journal run.jsonl workflow.xml           # durable first run
//	dmflow -journal run.jsonl -resume workflow.xml   # resume after a crash
//	dmflow -journal run.jsonl -report                # inspect the journal
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/workflow"
)

func main() {
	dax := flag.Bool("dax", false, "print the DAX export of the workflow instead of running it")
	sequential := flag.Bool("sequential", false, "disable parallel task execution")
	journalPath := flag.String("journal", "", "journal completed steps to this file (fsynced, crash-safe)")
	resume := flag.Bool("resume", false, "allow resuming from a non-empty journal (replays completed steps)")
	report := flag.Bool("report", false, "print the journal's per-step outcomes and exit (needs -journal)")
	deadline := flag.Duration("deadline", 0, "overall run deadline, budgeted across the critical path (0 = none)")
	flag.Parse()

	if *report {
		if *journalPath == "" {
			log.Fatal("dmflow: -report needs -journal")
		}
		if err := printReport(*journalPath); err != nil {
			log.Fatalf("dmflow: %v", err)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatalf("dmflow: %v", err)
	}
	g, err := workflow.UnmarshalXML(f)
	f.Close()
	if err != nil {
		log.Fatalf("dmflow: %v", err)
	}
	if *dax {
		doc, err := workflow.MarshalDAX(g)
		if err != nil {
			log.Fatalf("dmflow: %v", err)
		}
		os.Stdout.Write(doc)
		return
	}
	eng := workflow.NewEngine()
	eng.Parallel = !*sequential
	eng.Monitor = func(ev workflow.Event) {
		if ev.Err != nil {
			fmt.Fprintf(os.Stderr, "[%s] %s (%s) attempt %d: %v\n",
				ev.Kind, ev.TaskID, ev.UnitName, ev.Attempt, ev.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "[%s] %s (%s)\n", ev.Kind, ev.TaskID, ev.UnitName)
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	var res *workflow.Result
	if *journalPath != "" {
		j, jerr := workflow.OpenJournal(*journalPath)
		if jerr != nil {
			log.Fatalf("dmflow: %v", jerr)
		}
		if j.Len() > 0 && !*resume {
			j.Close()
			log.Fatalf("dmflow: journal %s already holds %d step(s); pass -resume to continue it or point -journal at a fresh file",
				*journalPath, j.Len())
		}
		res, err = eng.Resume(ctx, g, j)
		if cerr := j.Close(); cerr != nil && err == nil {
			err = cerr
		}
	} else {
		res, err = eng.Run(ctx, g)
	}
	if err != nil {
		log.Fatalf("dmflow: %v", err)
	}
	ids := make([]string, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ports := make([]string, 0, len(res.Outputs[id]))
		for p := range res.Outputs[id] {
			ports = append(ports, p)
		}
		sort.Strings(ports)
		for _, p := range ports {
			fmt.Printf("=== %s.%s ===\n%s\n", id, p, res.Outputs[id][p])
		}
	}
}

// printReport renders the journal's step outcomes: one line per record
// in journal order, then a summary. The journal is the source of truth —
// the workflow XML is not needed.
func printReport(path string) error {
	j, err := workflow.OpenJournal(path)
	if err != nil {
		return err
	}
	defer j.Close()
	recs := j.Records()
	if len(recs) == 0 {
		fmt.Printf("journal %s: empty\n", path)
		return nil
	}
	ok := 0
	fmt.Printf("%-20s %-24s %-8s %8s %6s %10s  %s\n",
		"STEP", "UNIT", "STATUS", "ATTEMPTS", "HEDGE", "WALL_MS", "STARTED")
	for _, r := range recs {
		if r.Status == workflow.StepOK {
			ok++
		}
		detail := ""
		if r.Error != "" {
			detail = "  " + r.Error
		}
		fmt.Printf("%-20s %-24s %-8s %8d %6d %10.1f  %s%s\n",
			r.Step, r.Unit, r.Status, r.Attempts, r.HedgeWins,
			r.WallMS, r.Started.Format(time.RFC3339), detail)
	}
	fmt.Printf("%d step(s): %d completed, %d failed\n", len(recs), ok, len(recs)-ok)
	return nil
}
