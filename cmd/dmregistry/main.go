// Command dmregistry runs a standalone UDDI-style service registry — the
// jUDDI role of the paper's deployment, whose inquiry interface the paper
// publishes at agents-comsc.grid.cf.ac.uk:8334/juddi/inquiry (§4.6).
//
// Usage:
//
//	dmregistry [-addr 127.0.0.1:8335]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8335", "listen address")
	flag.Parse()
	r := registry.New()
	fmt.Printf("dmregistry listening on http://%s (GET /inquiry, POST /publish, POST /remove)\n", *addr)
	if err := http.ListenAndServe(*addr, r.Handler()); err != nil {
		log.Fatalf("dmregistry: %v", err)
	}
}
