// Command dmregistry runs a standalone UDDI-style service registry — the
// jUDDI role of the paper's deployment, whose inquiry interface the paper
// publishes at agents-comsc.grid.cf.ac.uk:8334/juddi/inquiry (§4.6).
// Several dmservers publish into it (dmserver -publish) and clients
// discover every live endpoint of a service through /inquiry.
//
// Usage:
//
//	dmregistry [-addr 127.0.0.1:8335] [-ttl 15s]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8335", "listen address (use :0 for an ephemeral port)")
	ttl := flag.Duration("ttl", 0, "age out entries not re-published within this window (0 = never)")
	flag.Parse()

	r := registry.New()
	if *ttl > 0 {
		r = registry.NewWithTTL(*ttl)
		go func() {
			sweepEvery := *ttl / 2
			if sweepEvery < time.Second {
				sweepEvery = time.Second
			}
			for range time.Tick(sweepEvery) {
				r.Sweep()
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dmregistry: %v", err)
	}
	fmt.Printf("dmregistry listening on http://%s (GET /inquiry, POST /publish, POST /remove)\n", ln.Addr())
	if err := http.Serve(ln, r.Handler()); err != nil {
		log.Fatalf("dmregistry: %v", err)
	}
}
