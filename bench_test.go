// Package repro_test is the benchmark harness: one benchmark per figure,
// table or quantified claim of the paper (see DESIGN.md's experiment index
// E1-E15), plus the ablation benches DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// The headline systems result is §4.5: BenchmarkInvocation/serialising vs
// BenchmarkInvocation/cached reproduces the "significant performance
// penalty" of rebuilding the algorithm object from its serialised state on
// disk on every invocation, and the in-memory harness that removes it.
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/arff"
	"repro/internal/assoc"
	"repro/internal/attrsel"
	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/signal"
	"repro/internal/soap"
	"repro/internal/stream"
	"repro/internal/viz"
	"repro/internal/workflow"
)

// --- E3 (Figure 3): dataset statistics ---

func BenchmarkDatasetSummary(b *testing.B) {
	d := datagen.BreastCancer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dataset.Summarize(d)
		if s.NumInstances != 286 {
			b.Fatal("wrong summary")
		}
	}
}

// --- E4 (Figure 4): J48 on breast-cancer ---

func BenchmarkJ48BreastCancer(b *testing.B) {
	d := datagen.BreastCancer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := classify.NewJ48()
		if err := j.Train(d); err != nil {
			b.Fatal(err)
		}
		if j.Tree().AttrName != "node-caps" {
			b.Fatal("unexpected root")
		}
	}
}

// Ablation: pruning on/off (DESIGN.md).
func BenchmarkJ48Pruning(b *testing.B) {
	d := datagen.BreastCancer()
	for _, unpruned := range []bool{false, true} {
		name := "pruned"
		if unpruned {
			name = "unpruned"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := classify.NewJ48()
				j.Unpruned = unpruned
				if err := j.Train(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: split criterion — C4.5's gain ratio vs raw information gain
// (the ID3 bias towards many-valued attributes).
func BenchmarkJ48SplitCriterion(b *testing.B) {
	d := datagen.BreastCancer()
	for _, ig := range []bool{false, true} {
		name := "gainRatio"
		if ig {
			name = "infoGain"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := classify.NewJ48()
				j.UseInfoGain = ig
				if err := j.Train(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5 (§4.5): per-invocation serialisation vs the in-memory harness ---

func invocationBench(b *testing.B, backend harness.Backend) {
	b.Helper()
	d := datagen.BreastCancer()
	build := func() (classify.Classifier, error) {
		j := classify.NewJ48()
		if err := j.Train(d); err != nil {
			return nil, err
		}
		return j, nil
	}
	probe := d.Instances[0]
	// Warm: first invocation builds/trains once outside the timing loop.
	if err := harness.Invoke(backend, "j48", build, func(c classify.Classifier) error {
		_, err := classify.Predict(c, probe)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := harness.Invoke(backend, "j48", build, func(c classify.Classifier) error {
			_, err := classify.Predict(c, probe)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvocation(b *testing.B) {
	b.Run("serialising", func(b *testing.B) {
		store, err := model.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		invocationBench(b, &harness.SerialisingBackend{Store: store})
	})
	b.Run("cached", func(b *testing.B) {
		invocationBench(b, harness.NewCachedBackend(16))
	})
}

// Ablation: harness pool size under a rotating key workload (DESIGN.md).
func BenchmarkCachedBackendSizes(b *testing.B) {
	d := datagen.BreastCancer()
	build := func() (classify.Classifier, error) {
		j := classify.NewJ48()
		if err := j.Train(d); err != nil {
			return nil, err
		}
		return j, nil
	}
	const distinctKeys = 8
	for _, size := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("pool%d", size), func(b *testing.B) {
			store, err := model.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			backend := harness.NewCachedBackend(size)
			backend.Overflow = store
			probe := d.Instances[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := fmt.Sprintf("model-%d", i%distinctKeys)
				if err := harness.Invoke(backend, key, build, func(c classify.Classifier) error {
					_, err := classify.Predict(c, probe)
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Sweep: the serialisation penalty grows with model size (larger training
// sets -> bigger trees -> costlier per-call round trips), while the cached
// harness stays flat — the crossover story behind §4.5.
func BenchmarkInvocationByModelSize(b *testing.B) {
	for _, n := range []int{200, 1000, 5000} {
		d := datagen.RandomNominal(n, 12, 4, 0.3, 21)
		build := func() (classify.Classifier, error) {
			j := classify.NewJ48()
			j.Unpruned = true
			if err := j.Train(d); err != nil {
				return nil, err
			}
			return j, nil
		}
		probe := d.Instances[0]
		b.Run(fmt.Sprintf("serialising/n%d", n), func(b *testing.B) {
			store, err := model.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			backend := &harness.SerialisingBackend{Store: store}
			if err := harness.Invoke(backend, "m", build, func(classify.Classifier) error { return nil }); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := harness.Invoke(backend, "m", build, func(c classify.Classifier) error {
					_, err := classify.Predict(c, probe)
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cached/n%d", n), func(b *testing.B) {
			backend := harness.NewCachedBackend(4)
			if err := harness.Invoke(backend, "m", build, func(classify.Classifier) error { return nil }); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := harness.Invoke(backend, "m", build, func(c classify.Classifier) error {
					_, err := classify.Predict(c, probe)
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: the general Classifier service over live SOAP ---

func BenchmarkClassifyRoundtrip(b *testing.B) {
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	arffText := arff.Format(datagen.BreastCancer())
	url := dep.EndpointURL("Classifier")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := soap.CallContext(context.Background(), url, "classifyInstance", map[string]string{
			"dataset": arffText, "classifier": "J48", "attribute": "Class",
		})
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out["model"], "node-caps") {
			b.Fatal("bad model")
		}
	}
}

// Ablation: SOAP envelope encode/decode cost (DESIGN.md).
func BenchmarkSOAPEncode(b *testing.B) {
	arffText := arff.Format(datagen.BreastCancer())
	msg := soap.Message{Operation: "classifyInstance", Parts: map[string]string{
		"dataset": arffText, "classifier": "J48", "attribute": "Class",
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := soap.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := soap.Unmarshal(strings.NewReader(string(raw))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1 (Figure 1): the composed case-study workflow end to end ---

func BenchmarkCaseStudyWorkflow(b *testing.B) {
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	tk := core.NewToolkit()
	arffText := arff.Format(datagen.BreastCancer())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, viewer, err := core.BuildCaseStudyWorkflow(tk, dep, arffText, "J48", "Class")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workflow.NewEngine().Run(context.Background(), g); err != nil {
			b.Fatal(err)
		}
		if len(viewer.Seen()) != 1 {
			b.Fatal("viewer empty")
		}
	}
}

// Ablation: parallel vs sequential workflow scheduling (DESIGN.md) over a
// fan-out of independent local tasks.
func BenchmarkWorkflowScheduling(b *testing.B) {
	mkGraph := func() *workflow.Graph {
		g := workflow.NewGraph("fan")
		d := datagen.BreastCancer()
		for i := 0; i < 8; i++ {
			id := fmt.Sprintf("train%d", i)
			g.MustAdd(id, &workflow.FuncUnit{
				UnitName: id, Out: []string{"acc"},
				Fn: func(ctx context.Context, in workflow.Values) (workflow.Values, error) {
					j := classify.NewJ48()
					if err := j.Train(d); err != nil {
						return nil, err
					}
					return workflow.Values{"acc": "ok"}, nil
				}})
		}
		return g
	}
	for _, parallel := range []bool{true, false} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := workflow.NewEngine()
				e.Parallel = parallel
				if _, err := e.Run(context.Background(), mkGraph()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9 (§5.3): genetic-search attribute selection ---

func BenchmarkGeneticSearch(b *testing.B) {
	d := datagen.BreastCancer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols, err := attrsel.GeneticSearch{Population: 20, Generations: 10, Seed: int64(i)}.
			Search(&attrsel.CFS{}, d)
		if err != nil {
			b.Fatal(err)
		}
		if len(cols) == 0 {
			b.Fatal("empty selection")
		}
	}
}

// --- E11: cross-validation (the Grid-WEKA distributed task) ---

func BenchmarkCrossValidation(b *testing.B) {
	d := datagen.BreastCancer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := classify.CrossValidateContext(context.Background(), func() classify.Classifier { return classify.NewJ48() }, d, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		if ev.Accuracy() < 0.5 {
			b.Fatal("degenerate CV")
		}
	}
}

// --- Tentpole: parallel compute kernels, P=1 vs P=GOMAXPROCS ---
//
// These benches quantify the internal/parallel fan-out on the three
// kernels the README's Performance section reports: cross-validation
// folds, ensemble member training and the k-means assignment scan. Each
// kernel is bit-identical at any worker count (see the determinism
// tests), so the sub-benchmark pair measures pure scheduling win. On a
// single-CPU machine both levels collapse to the sequential path.

// parallelLevels reports the worker counts worth benchmarking: 1 and, on
// multi-core machines, one worker per CPU.
func parallelLevels() []int {
	levels := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		levels = append(levels, n)
	}
	return levels
}

func BenchmarkCrossValidateParallel(b *testing.B) {
	d := datagen.RandomNominal(2000, 12, 4, 0.3, 29)
	factory := func() classify.Classifier { return classify.NewJ48() }
	for _, p := range parallelLevels() {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev, err := classify.CrossValidateContext(context.Background(), factory, d, 10, 1,
					classify.Parallelism(p))
				if err != nil {
					b.Fatal(err)
				}
				if ev.Accuracy() <= 0 {
					b.Fatal("degenerate CV")
				}
			}
		})
	}
}

func BenchmarkBaggingParallel(b *testing.B) {
	d := datagen.RandomNominal(1500, 10, 4, 0.2, 31)
	for _, p := range parallelLevels() {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bag := &classify.Bagging{Size: 16, Seed: 7, Parallelism: p}
				if err := bag.Train(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKMeansParallel(b *testing.B) {
	d := datagen.GaussianClusters(8, 10000, 8, 6, 19)
	for _, p := range parallelLevels() {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				km := &cluster.KMeans{K: 8, MaxIter: 40, Seed: 3, Parallelism: p}
				if err := km.Build(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E12: streaming throughput ---

func BenchmarkStreamThroughput(b *testing.B) {
	d := datagen.RandomNominal(2000, 10, 4, 0.1, 3)
	ln, err := stream.Listen("127.0.0.1:0", d)
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, closer, err := stream.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		nb := &classify.NaiveBayes{}
		if err := nb.Begin(r.Schema()); err != nil {
			b.Fatal(err)
		}
		n, err := stream.Feed(r, nb)
		closer.Close()
		if err != nil {
			b.Fatal(err)
		}
		if n != 2000 {
			b.Fatalf("streamed %d", n)
		}
	}
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "instances/s")
}

// --- E13: the signal toolbox ---

func BenchmarkFFT(b *testing.B) {
	xs := datagen.Sine(4096, []float64{64, 300}, []float64{1, 0.4}, 0.1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		psd := signal.Periodogram(xs, signal.Hann)
		if signal.DominantFrequency(psd) != 64 {
			b.Fatal("wrong dominant bin")
		}
	}
}

// --- E7: Cobweb clustering ---

func BenchmarkCobweb(b *testing.B) {
	d := datagen.GaussianClusters(3, 200, 2, 8, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := &cluster.Cobweb{Acuity: 1.0, Cutoff: 0.0028}
		if err := cw.Build(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	d := datagen.GaussianClusters(4, 1000, 4, 8, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km := &cluster.KMeans{K: 4, MaxIter: 100, Seed: int64(i)}
		if err := km.Build(d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Association rules (the third service family) ---

func BenchmarkApriori(b *testing.B) {
	trans := datagen.Baskets(2000, 24, 4, 0.9, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ap := assoc.NewApriori()
		ap.MinSupport = 0.08
		ap.MinConfidence = 0.8
		rules, err := ap.Mine(trans)
		if err != nil {
			b.Fatal(err)
		}
		if len(rules) == 0 {
			b.Fatal("no rules")
		}
	}
}

// Baseline comparison: Apriori vs FP-growth on the same workload. The
// classic result — FP-growth avoids candidate generation and wins on dense
// data — should reproduce in shape.
func BenchmarkMinerComparison(b *testing.B) {
	trans := datagen.Baskets(2000, 24, 4, 0.9, 17)
	b.Run("Apriori", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ap := assoc.NewApriori()
			ap.MinSupport = 0.08
			ap.MinConfidence = 0.8
			if _, err := ap.Mine(trans); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FPGrowth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fp := assoc.NewFPGrowth()
			fp.MinSupport = 0.08
			fp.MinConfidence = 0.8
			if _, err := fp.Mine(trans); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E8 (§4.2): the Mathematica-substitute plot3D rendering ---

func BenchmarkPlot3D(b *testing.B) {
	var pts []viz.Point3D
	for i := 0; i < 2000; i++ {
		x, y := float64(i%50), float64(i/50)
		pts = append(pts, viz.Point3D{X: x, Y: y, Z: x * y})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := viz.Plot3DPNG(640, 480, pts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Model serialisation (the unit cost underlying E5) ---

func BenchmarkModelSerialise(b *testing.B) {
	j := classify.NewJ48()
	if err := j.Train(datagen.BreastCancer()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := model.Marshal(j)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := model.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiment batch engine (internal/experiment) ---

// noopExecutor isolates the scheduler's own cost: worker pool dispatch,
// journal-free bookkeeping and result collection.
type noopExecutor struct{}

func (noopExecutor) Name() string { return "noop" }
func (noopExecutor) Execute(ctx context.Context, job experiment.Job, d *dataset.Dataset) (experiment.Metrics, error) {
	return experiment.Metrics{Accuracy: 1}, nil
}

// BenchmarkExperimentScheduler measures per-job scheduling overhead: the
// batch engine must stay negligible next to training time.
func BenchmarkExperimentScheduler(b *testing.B) {
	jobs := make([]experiment.Job, 256)
	for i := range jobs {
		jobs[i] = experiment.Job{ID: fmt.Sprintf("job-%03d", i), Algorithm: "noop", Dataset: "none"}
	}
	s := &experiment.Scheduler{Workers: 8}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(ctx, jobs, nil, noopExecutor{}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs/op")
}

// BenchmarkExperimentSweep is a real (small) sweep: 4 classifiers × 3-fold
// CV on the weather dataset through the local executor.
func BenchmarkExperimentSweep(b *testing.B) {
	spec := &experiment.Spec{
		Name:  "bench-sweep",
		Folds: 3,
		Seed:  1,
		Datasets: []experiment.DatasetSpec{
			{Name: "weather", Builtin: "weather"},
		},
		Algorithms: []experiment.AlgorithmSpec{
			{Name: "J48"}, {Name: "OneR"}, {Name: "ZeroR"}, {Name: "IBk"},
		},
	}
	jobs, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	data, err := spec.Materialize()
	if err != nil {
		b.Fatal(err)
	}
	s := &experiment.Scheduler{}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := s.Run(ctx, jobs, data, experiment.Local{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res.Status != experiment.StatusOK {
				b.Fatalf("job %s: %s (%s)", res.Job.ID, res.Status, res.Err)
			}
		}
	}
}
