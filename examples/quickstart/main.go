// Quickstart: the toolkit's local API in one file — load the case-study
// dataset, print the Figure-3 statistics, train the C4.5 (J48) classifier,
// print the Figure-4 decision tree, and cross-validate it.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/viz"
)

func main() {
	// The toolbox tree the user sees in the composition workspace (Fig. 1).
	tk := core.NewToolkit()
	fmt.Println("== Toolbox ==")
	fmt.Print(tk.TreeString())

	// The breast-cancer dataset of the case study (§5.1, Figure 3).
	d := datagen.BreastCancer()
	fmt.Println("== Dataset (Figure 3) ==")
	fmt.Print(dataset.Summarize(d).Format())

	// Train J48 — the C4.5 decision tree of Figure 4.
	j := classify.NewJ48()
	if err := j.Train(d); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Decision tree (Figure 4) ==")
	fmt.Print(j.String())

	fmt.Println("\n== Decision tree as DOT (classify graph operation) ==")
	fmt.Print(viz.TreeDOT(j.Tree()))

	// Verify the discovered knowledge (§3's testing requirement).
	ev, err := classify.CrossValidateContext(context.Background(),
		func() classify.Classifier { return classify.NewJ48() }, d, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== 10-fold cross-validation ==")
	fmt.Print(ev.String())
}
