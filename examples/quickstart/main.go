// Quickstart: the toolkit's local API in one file — load the case-study
// dataset, print the Figure-3 statistics, train the C4.5 (J48) classifier,
// print the Figure-4 decision tree, and cross-validate it — then the same
// knowledge over the wire with the typed client: deploy the services
// in-process, open a session, and score instances one-at-a-time (XML) and
// as one dmb1 binary batch.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/viz"
)

func main() {
	// The toolbox tree the user sees in the composition workspace (Fig. 1).
	tk := core.NewToolkit()
	fmt.Println("== Toolbox ==")
	fmt.Print(tk.TreeString())

	// The breast-cancer dataset of the case study (§5.1, Figure 3).
	d := datagen.BreastCancer()
	fmt.Println("== Dataset (Figure 3) ==")
	fmt.Print(dataset.Summarize(d).Format())

	// Train J48 — the C4.5 decision tree of Figure 4.
	j := classify.NewJ48()
	if err := j.Train(d); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Decision tree (Figure 4) ==")
	fmt.Print(j.String())

	fmt.Println("\n== Decision tree as DOT (classify graph operation) ==")
	fmt.Print(viz.TreeDOT(j.Tree()))

	// Verify the discovered knowledge (§3's testing requirement).
	ev, err := classify.CrossValidateContext(context.Background(),
		func() classify.Classifier { return classify.NewJ48() }, d, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== 10-fold cross-validation ==")
	fmt.Print(ev.String())

	// The same workflow over the wire, through the typed client: deploy
	// every service on an ephemeral port and talk to it as a remote user
	// would — no part maps, just Go values.
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	client := core.NewClient(dep.BaseURL)
	ctx := context.Background()

	fmt.Println("\n== Typed client (remote session) ==")
	token, err := client.CreateSession(ctx, core.TrainOptions{
		Dataset: d, Classifier: "J48", Class: "Class",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: %.40s...\n", token)

	// One-at-a-time over XML: fine interactively...
	probe := d.Clone()
	labels, err := client.Classify(ctx, token, probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XML path labelled %d instances; first: %s\n", len(labels), labels[0])

	// ...and the dmb1 binary batch path for throughput: the whole dataset
	// ships as one columnar block, the model is restored once, and every
	// label comes back with its class distribution.
	batch, err := client.ClassifyBatch(ctx, token, dataset.All(probe))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch path scored %d rows in one call; first: %s %v\n",
		len(batch), batch[0].Name, batch[0].Distribution)
	if err := client.CloseSession(ctx, token); err != nil {
		log.Fatal(err)
	}
}
