// Signalflow demonstrates the cross-toolbox composition the paper credits
// to Triana (§2): "use of the Triana workflow engine also allows us to
// utilize the Signal Processing toolbox available with algorithms such as
// Fast Fourier Transform and various spectral analysis algorithms". A noisy
// two-tone signal flows through the FFT tool into the GNUPlot-substitute
// Plot service, which renders the spectrum as ASCII and as a PNG.
package main

import (
	"context"
	"encoding/base64"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/workflow"
)

func main() {
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	tk := core.NewToolkit()
	if _, err := tk.ImportWSDL(dep.WSDLURL("Plot")); err != nil {
		log.Fatal(err)
	}

	// The signal: tones at 12 and 40 cycles with noise.
	xs := datagen.Sine(512, []float64{12, 40}, []float64{1, 0.6}, 0.2, 5)
	toks := make([]string, len(xs))
	for i, v := range xs {
		toks[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}

	fft, err := tk.NewUnit("FFT")
	if err != nil {
		log.Fatal(err)
	}
	plotText, err := tk.NewUnit("Plot.plot")
	if err != nil {
		log.Fatal(err)
	}
	plotPNG, err := tk.NewUnit("Plot.plotPNG")
	if err != nil {
		log.Fatal(err)
	}
	// Bridge: the FFT's spectrum (comma-separated PSD) becomes x,y points.
	bridge := &workflow.FuncUnit{
		UnitName: "SpectrumToPoints",
		In:       []string{"spectrum"},
		Out:      []string{"points"},
		Fn: func(ctx context.Context, in workflow.Values) (workflow.Values, error) {
			var b strings.Builder
			for i, tok := range strings.Split(in["spectrum"], ",") {
				fmt.Fprintf(&b, "%d,%s\n", i, strings.TrimSpace(tok))
			}
			return workflow.Values{"points": b.String()}, nil
		},
	}

	g := workflow.NewGraph("spectral-analysis")
	task := g.MustAdd("fft", fft)
	task.Params["signal"] = strings.Join(toks, ",")
	g.MustAdd("bridge", bridge)
	g.MustAdd("ascii", plotText)
	g.MustConnect("fft", "spectrum", "bridge", "spectrum")
	g.MustConnect("bridge", "points", "ascii", "points")
	res, err := workflow.NewEngine().Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	// Second leg reuses the bridge output for a direct PNG service call.
	pts, _ := res.Value("bridge", "points")
	png, err := plotPNG.Run(context.Background(), workflow.Values{"points": pts, "kind": "line"})
	if err != nil {
		log.Fatal(err)
	}

	dom, _ := res.Value("fft", "dominant")
	fmt.Printf("dominant frequency bin: %s (expected 12)\n\n", dom)
	ascii, _ := res.Value("ascii", "plot")
	fmt.Println("power spectrum (Plot service, GNUPlot dumb-terminal style):")
	fmt.Print(ascii)

	raw, err := base64.StdEncoding.DecodeString(png["image"])
	if err != nil {
		log.Fatal(err)
	}
	out := filepath.Join(os.TempDir(), "spectrum.png")
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPNG spectrum written to %s (%d bytes)\n", out, len(raw))
}
