// Example batch demonstrates the experiment engine: a 24-job
// multi-classifier sweep (4 algorithms × 3 configurations × 2 datasets)
// over the bundled datasets, run three ways —
//
//  1. locally across all cores through the in-process executor,
//  2. with injected transient faults, showing retry with backoff bringing
//     the batch home and the attempt counts surfacing in the report,
//  3. remotely, against Classifier Web Services hosted in this process and
//     discovered through the UDDI-style registry (the paper's composition
//     loop, driven at batch scale).
//
// Run with: go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/harness"
	"repro/internal/registry"
	"repro/internal/services"
)

func spec() *experiment.Spec {
	return &experiment.Spec{
		Name:  "multi-classifier-sweep",
		Folds: 10,
		Seed:  7,
		Datasets: []experiment.DatasetSpec{
			{Name: "breast-cancer", Builtin: "breast-cancer"},
			{Name: "contact-lenses", Builtin: "contact-lenses"},
		},
		Algorithms: []experiment.AlgorithmSpec{
			{Name: "J48", Grid: map[string][]string{"confidenceFactor": {"0.1", "0.25", "0.5"}}},
			{Name: "IBk", Grid: map[string][]string{"k": {"1", "3", "5"}}},
			{Name: "OneR", Grid: map[string][]string{"minBucket": {"3", "6", "9"}}},
			{Name: "Logistic", Grid: map[string][]string{"lambda": {"0", "0.0001", "0.01"}}},
		},
	}
}

func main() {
	s := spec()
	jobs, err := s.Expand()
	if err != nil {
		log.Fatal(err)
	}
	data, err := s.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec %q expands to %d jobs\n\n", s.Name, len(jobs))

	// --- 1. Local parallel run across all cores.
	fmt.Println("=== Local run (in-process executor, NumCPU workers) ===")
	sched := &experiment.Scheduler{}
	began := time.Now()
	results, err := sched.Run(context.Background(), jobs, data, experiment.Local{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.Report(results))
	fmt.Printf("completed in %s\n\n", time.Since(began).Round(time.Millisecond))

	// --- 2. The same batch with a 30% transient fault rate injected.
	fmt.Println("=== Fault-injected run (30% transient failures, retried with backoff) ===")
	flaky := &flakyExecutor{inner: experiment.Local{}, failProb: 0.3, rng: rand.New(rand.NewSource(11))}
	sched2 := &experiment.Scheduler{MaxRetries: 4, BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond}
	results2, err := sched2.Run(context.Background(), jobs, data, flaky, nil)
	if err != nil {
		log.Fatal(err)
	}
	retried, failed := 0, 0
	for _, res := range results2 {
		if res.Attempts > 1 {
			retried++
		}
		if res.Status == experiment.StatusFailed {
			failed++
		}
	}
	fmt.Printf("%d/%d jobs needed retries, %d failed permanently\n\n", retried, len(results2), failed)

	// --- 3. Remote dispatch: host two Classifier services, publish them in
	// the registry, discover, and fan the same spec out over SOAP.
	fmt.Println("=== Remote run (SOAP classifier services via registry discovery) ===")
	reg := registry.New()
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()
	for i := 0; i < 2; i++ {
		mux := http.NewServeMux()
		svcSrv := httptest.NewServer(mux)
		defer svcSrv.Close()
		paths := services.Host(mux, svcSrv.URL, services.NewClassifierService(harness.NewCachedBackend(32)))
		if err := reg.Publish(registry.Entry{
			Name:     fmt.Sprintf("Classifier-%d", i+1),
			Category: "classifier",
			Endpoint: svcSrv.URL + paths["Classifier"],
		}); err != nil {
			log.Fatal(err)
		}
	}
	remote, err := experiment.DiscoverRemote(regSrv.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d classifier services\n", len(remote.Endpoints()))
	began = time.Now()
	results3, err := (&experiment.Scheduler{JobTimeout: time.Minute}).
		Run(context.Background(), jobs, data, remote, nil)
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for _, res := range results3 {
		if res.Status == experiment.StatusOK {
			ok++
		}
	}
	fmt.Printf("%d/%d jobs completed remotely in %s\n", ok, len(results3), time.Since(began).Round(time.Millisecond))
	for _, g := range experiment.Aggregate(results3) {
		fmt.Printf("  %-10s mean accuracy %.4f (resubstitution, %d jobs)\n", g.Algorithm, g.MeanAcc, g.Jobs)
	}
}

// flakyExecutor injects transient faults with probability failProb.
type flakyExecutor struct {
	inner    experiment.Executor
	failProb float64

	mu  sync.Mutex
	rng *rand.Rand
}

func (f *flakyExecutor) Name() string { return "flaky-" + f.inner.Name() }

func (f *flakyExecutor) Execute(ctx context.Context, job experiment.Job, d *dataset.Dataset) (experiment.Metrics, error) {
	f.mu.Lock()
	fail := f.rng.Float64() < f.failProb
	f.mu.Unlock()
	if fail {
		return experiment.Metrics{}, experiment.Transient(fmt.Errorf("injected transient fault for %s", job.ID))
	}
	return f.inner.Execute(ctx, job, d)
}
