// Blockpipeline chains batch Web Service calls binary end to end: a
// dmb1 block flows through two filterBatch hops (missing-value repair,
// then normalisation), the second hop's reply payload cables straight
// into clusterBatch — no ARFF text is ever materialised between
// services — and a regressBatch call rounds out the three block-
// returning families. Every hop moves one columnar block instead of
// one XML document per row; the typed core.Client hides the SOAP
// plumbing behind Go structs.
//
// Run with: go run ./examples/blockpipeline
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	client := core.NewClient(dep.BaseURL)
	ctx := context.Background()

	// The raw batch: three planted Gaussians, 600 rows, 4 features.
	raw := datagen.GaussianClusters(3, 600, 4, 3.0, 17)
	fmt.Printf("batch: %d rows x %d attributes, shipped as one dmb1 block\n",
		raw.NumInstances(), raw.NumAttributes())

	// Hop 1: repair missing values. The dataset is encoded here once;
	// every later hop forwards the previous reply's payload untouched.
	f1, err := client.FilterBatch(ctx, core.FilterBatchOptions{
		Dataset: raw, Filter: "ReplaceMissingValues",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hop 1: ReplaceMissingValues -> %d rows (%s)\n", f1.Rows, f1.Encoding)

	// Hop 2: normalise, chained by payload — the base64 block from hop 1
	// goes out exactly as it came in, no re-encode, no ARFF.
	f2, err := client.FilterBatch(ctx, core.FilterBatchOptions{
		Payload: f1.Payload, Filter: "Normalize",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hop 2: Normalize            -> %d rows, chained by payload\n", f2.Rows)

	// Hop 3: cluster the filtered block. The DMC1 reply carries one
	// assignment per row plus per-cluster distance columns.
	cb, err := client.ClusterBatch(ctx, core.ClusterBatchOptions{
		Batch:     f2.Dataset,
		Clusterer: "SimpleKMeans",
		Options:   map[string]string{"k": "3"},
	})
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]int, cb.Clusters)
	for _, a := range cb.Assignments {
		counts[a]++
	}
	fmt.Printf("hop 3: clusterBatch         -> %d clusters, sizes %v, score columns: %s\n",
		cb.Clusters, counts, cb.ScoreKind)

	// The third block family: train a regressor on ARFF once, predict a
	// whole block in one DMV1 round trip.
	train := datagen.WeatherNumeric()
	rb, err := client.RegressBatch(ctx, core.RegressBatchOptions{
		Train:     train,
		Batch:     train.Clone(),
		Regressor: "LinearRegression",
		Target:    "temperature",
	})
	if err != nil {
		log.Fatal(err)
	}
	min, max := rb.Values[0], rb.Values[0]
	for _, v := range rb.Values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	fmt.Printf("regressBatch: %d predictions for %q in [%.2f, %.2f]\n",
		rb.Rows, rb.Target, min, max)
}
