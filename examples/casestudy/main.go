// Casestudy reproduces §5 end-to-end: deploy the data-mining Web Services
// locally, compose the Figure-1 workflow (getClassifiers →
// ClassifierSelector → getOptions → OptionSelector → classifyInstance →
// TreeViewer, fed by LocalDataset and AttributeSelector), run it over live
// SOAP, analyse the resulting tree with the TreeAnalyzer service, and
// export the workflow graph as XML and GriPhyN DAX.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arff"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/soap"
	"repro/internal/workflow"
)

func main() {
	// Host every Web Service (the Tomcat/Axis role, §5.1) with the §4.5
	// in-memory harness managing algorithm instances.
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	fmt.Printf("services deployed at %s\n", dep.BaseURL)
	for _, e := range dep.Registry.Inquire("", "") {
		fmt.Printf("  %-20s %-20s %s\n", e.Name, e.Category, e.WSDLURL)
	}

	// Compose the Figure-1 workflow. Importing the Classifier WSDL creates
	// one tool per operation, exactly as in Triana (§4).
	tk := core.NewToolkit()
	arffText := arff.Format(datagen.BreastCancer())
	g, viewer, err := core.BuildCaseStudyWorkflow(tk, dep, arffText, "J48", "Class")
	if err != nil {
		log.Fatal(err)
	}

	// Execute with progress monitoring (§3's service-monitoring
	// requirement).
	eng := workflow.NewEngine()
	eng.Monitor = func(ev workflow.Event) {
		fmt.Printf("  [%s] %s\n", ev.Kind, ev.TaskID)
	}
	fmt.Println("\nrunning the case-study workflow:")
	res, err := eng.Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== TreeViewer output (Figure 4) ==")
	for _, tree := range viewer.Seen() {
		fmt.Print(tree)
	}
	if acc, ok := res.Value("classify", "accuracy"); ok {
		fmt.Printf("\ntraining accuracy reported by the service: %s\n", acc)
	}

	// The case study's third service: analyse the decision-tree output.
	tree, _ := res.Value("classify", "model")
	analysis, err := soap.CallContext(context.Background(), dep.EndpointURL("TreeAnalyzer"), "analyze",
		map[string]string{"tree": tree})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== TreeAnalyzer service ==")
	fmt.Printf("root attribute: %s\nleaves: %s\ndepth: %s\nattributes used:\n%s\n",
		analysis["root"], analysis["leaves"], analysis["depth"], analysis["attributes"])
	fmt.Println("rules:")
	fmt.Println(analysis["rules"])

	// Export the graph: Triana's XML format and the GriPhyN DAX standard
	// (§2). The local selector tools are swapped for const stand-ins, since
	// only service and data tools serialise.
	dax, err := workflow.MarshalDAX(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== GriPhyN DAX export ==")
	fmt.Print(string(dax))
}
