// Harness reproduces §4.5 live, end-to-end over SOAP: two deployments host
// the same Session service, one on the naive serialising backend (every
// invocation round-trips the model through its on-disk serialised state)
// and one on the paper's in-memory harness. The same interactive session —
// create once, then repeated classify calls — is timed against both.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/arff"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/soap"
)

func main() {
	dir, err := os.MkdirTemp("", "harness-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := model.NewStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	naive, err := core.Deploy("127.0.0.1:0", &harness.SerialisingBackend{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	defer naive.Close()
	cached, err := core.Deploy("127.0.0.1:0", harness.NewCachedBackend(16))
	if err != nil {
		log.Fatal(err)
	}
	defer cached.Close()

	d := datagen.BreastCancer()
	trainARFF := arff.Format(d)
	// A single unlabelled probe instance per interactive call.
	probe := d.CloneSchema()
	one := d.Instances[0].Clone()
	one.Values[probe.ClassIndex] = dataset.Missing
	probe.Instances = append(probe.Instances, one)
	probeARFF := arff.Format(probe)

	const calls = 50
	run := func(dep *core.Deployment, label string) time.Duration {
		url := dep.EndpointURL("Session")
		out, err := soap.CallContext(context.Background(), url, "createSession", map[string]string{
			"dataset": trainARFF, "classifier": "J48", "attribute": "Class",
		})
		if err != nil {
			log.Fatal(err)
		}
		session := out["session"]
		began := time.Now()
		for i := 0; i < calls; i++ {
			if _, err := soap.CallContext(context.Background(), url, "classify", map[string]string{
				"session": session, "instances": probeARFF,
			}); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(began)
		fmt.Printf("%-12s %d interactive invocations in %8v  (%v/invocation)\n",
			label, calls, elapsed.Round(time.Millisecond), (elapsed / calls).Round(time.Microsecond))
		return elapsed
	}

	fmt.Println("§4.5 live: the same interactive session against both deployments")
	naiveT := run(naive, "serialising")
	cachedT := run(cached, "cached")
	fmt.Printf("\nthe in-memory harness removes the per-invocation penalty: %.1fx faster over SOAP\n",
		float64(naiveT)/float64(cachedT))
	fmt.Println("(the remaining cost is the SOAP round trip itself; at the library level the gap is 3-4 orders of magnitude — see EXPERIMENTS.md E5)")
}
