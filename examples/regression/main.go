// Regression exercises the numeric-target family §2 lists among WEKA's
// tools: fit ordinary least squares and a kNN regressor to a synthetic
// process, report MAE/RMSE/R², and plot predictions against truth with the
// toolkit's ASCII plotter.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/regress"
	"repro/internal/viz"
)

func main() {
	// Ground truth: y = 2.5*x1 - 1.5*x2 + 4 + noise.
	rng := rand.New(rand.NewSource(11))
	d := dataset.New("process",
		dataset.NewNumericAttribute("x1"),
		dataset.NewNumericAttribute("x2"),
		dataset.NewNumericAttribute("y"))
	d.ClassIndex = 2
	for i := 0; i < 400; i++ {
		x1, x2 := rng.NormFloat64()*3, rng.NormFloat64()*3
		y := 2.5*x1 - 1.5*x2 + 4 + rng.NormFloat64()*0.5
		d.MustAdd(dataset.NewInstance([]float64{x1, x2, y}))
	}
	train := d.ShallowWith(d.Instances[:300])
	test := d.ShallowWith(d.Instances[300:])

	lr := &regress.LinearRegression{}
	if err := lr.Train(train); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Fitted linear model ==")
	fmt.Print(lr.String())

	knn := &regress.KNNRegressor{K: 7, DistanceWeight: true}
	if err := knn.Train(train); err != nil {
		log.Fatal(err)
	}

	for _, r := range []regress.Regressor{lr, knn} {
		ev := &regress.Evaluation{}
		if err := ev.TestModel(r, test); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s held-out MAE %.3f  RMSE %.3f  R2 %.4f\n",
			r.Name(), ev.MAE(), ev.RMSE(), ev.R2())
	}

	// Predicted vs actual scatter for the linear model.
	s := viz.Series{Name: "pred vs actual"}
	for _, in := range test.Instances {
		p, err := lr.Predict(in)
		if err != nil {
			log.Fatal(err)
		}
		s.X = append(s.X, in.Values[2])
		s.Y = append(s.Y, p)
	}
	fmt.Println("\npredicted (y-axis) against actual (x-axis) — a diagonal means a good fit:")
	fmt.Print(viz.AsciiPlot(60, 18, s))
}
