// Distributedcv realises Grid WEKA's headline capability (§2) with the
// toolkit's own pieces: cross-validation distributed "across several
// computers contained within an ad-hoc Grid". Three deployments stand in
// for grid nodes; each fold's train/evaluate job runs as a workflow task
// against one of them (round-robin), with a dead node exercising the
// fault-tolerant migration path.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/arff"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/workflow"
)

func main() {
	// Three "grid nodes".
	var nodes []*core.Deployment
	for i := 0; i < 3; i++ {
		dep, err := core.Deploy("127.0.0.1:0", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer dep.Close()
		nodes = append(nodes, dep)
		fmt.Printf("node %d at %s\n", i, dep.BaseURL)
	}
	// Kill node 2 to exercise migration.
	if err := nodes[2].Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 2 has failed; its jobs will migrate")

	d := datagen.BreastCancer()
	const k = 6
	folds, err := dataset.FoldsView(d, k, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}

	unitFor := func(dep *core.Deployment) *workflow.SOAPUnit {
		return &workflow.SOAPUnit{
			Endpoint:  dep.EndpointURL("Classifier"),
			Service:   "Classifier",
			Operation: "classifyInstance",
			In:        []string{"dataset", "classifier", "options", "attribute"},
			Out:       []string{"model", "evaluation", "accuracy"},
		}
	}

	g := workflow.NewGraph("distributed-cv")
	for i := 0; i < k; i++ {
		train, _ := dataset.TrainTestViewForFold(d, folds, i)
		node := nodes[i%len(nodes)]
		task := g.MustAdd(fmt.Sprintf("fold%d", i), unitFor(node))
		// Every other node is an alternate: jobs on the dead node migrate.
		for j := range nodes {
			if j != i%len(nodes) {
				task.Alternates = append(task.Alternates, unitFor(nodes[j]))
			}
		}
		task.Params["dataset"] = arff.Format(train.Materialize())
		task.Params["classifier"] = "J48"
		task.Params["attribute"] = "Class"
	}

	migrations := 0
	eng := workflow.NewEngine()
	eng.Monitor = func(ev workflow.Event) {
		if ev.Kind == workflow.TaskRetried {
			migrations++
		}
	}
	res, err := eng.Run(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d fold jobs completed, %d migrated off the dead node\n", k, migrations)

	// Pool the per-fold training accuracies reported by the services, then
	// evaluate properly: held-out per fold with local models.
	var remote []string
	for i := 0; i < k; i++ {
		acc, _ := res.Value(fmt.Sprintf("fold%d", i), "accuracy")
		remote = append(remote, acc)
	}
	fmt.Printf("per-fold remote training accuracies: %s\n", strings.Join(remote, " "))

	// Local verification pass (the Grid-WEKA "cross-validation" task run
	// with the library directly, pooling held-out folds).
	ev, err := classify.CrossValidateContext(context.Background(),
		func() classify.Classifier { return classify.NewJ48() }, d, k, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pooled %d-fold cross-validated accuracy: %.3f (kappa %.3f)\n",
		k, ev.Accuracy(), ev.Kappa())
}
