// Distributedcv realises Grid WEKA's headline capability (§2) with the
// toolkit's own pieces: cross-validation distributed "across several
// computers contained within an ad-hoc Grid". Three deployments stand in
// for grid nodes; each fold's train/evaluate job goes out through the
// typed client (round-robin over the nodes), with a dead node exercising
// the fault-tolerant migration path: a fold whose assigned node is gone
// fails over to the next live endpoint.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	// Three "grid nodes".
	var nodes []*core.Deployment
	for i := 0; i < 3; i++ {
		dep, err := core.Deploy("127.0.0.1:0", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer dep.Close()
		nodes = append(nodes, dep)
		fmt.Printf("node %d at %s\n", i, dep.BaseURL)
	}
	// Kill node 2 to exercise migration.
	if err := nodes[2].Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 2 has failed; its jobs will migrate")

	d := datagen.BreastCancer()
	const k = 6
	folds, err := dataset.FoldsView(d, k, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}

	// One typed client serves every node: TrainAt takes the explicit
	// Classifier endpoint, so the endpoint pool stays the caller's concern.
	client := core.NewClient(nodes[0].BaseURL)
	ctx := context.Background()
	endpoints := make([]string, len(nodes))
	for i, n := range nodes {
		endpoints[i] = n.EndpointURL("Classifier")
	}

	// Dispatch each fold to its assigned node; on failure, migrate the job
	// to the next endpoint in the ring (the workflow engine's alternates,
	// spelled out with plain Go control flow over the typed API).
	migrations := 0
	var remote []string
	for i := 0; i < k; i++ {
		train, _ := dataset.TrainTestViewForFold(d, folds, i)
		opts := core.TrainOptions{
			Dataset:    train.Materialize(),
			Classifier: "J48",
			Class:      "Class",
		}
		var res *core.TrainResult
		var lastErr error
		for attempt := 0; attempt < len(endpoints); attempt++ {
			ep := endpoints[(i+attempt)%len(endpoints)]
			res, lastErr = client.TrainAt(ctx, ep, opts)
			if lastErr == nil {
				break
			}
			migrations++
		}
		if lastErr != nil {
			log.Fatalf("fold %d failed on every node: %v", i, lastErr)
		}
		remote = append(remote, fmt.Sprintf("%.3f", res.Accuracy))
	}
	fmt.Printf("\n%d fold jobs completed, %d migrated off the dead node\n", k, migrations)
	fmt.Printf("per-fold remote training accuracies: %s\n", strings.Join(remote, " "))

	// Local verification pass (the Grid-WEKA "cross-validation" task run
	// with the library directly, pooling held-out folds).
	ev, err := classify.CrossValidateContext(context.Background(),
		func() classify.Classifier { return classify.NewJ48() }, d, k, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pooled %d-fold cross-validated accuracy: %.3f (kappa %.3f)\n",
		k, ev.Accuracy(), ev.Kappa())
}
