// Pipeline walks the five-stage discovery workflow of §3.1 against live
// services: (1) select a data set, (2) select a data mining algorithm from
// the service's list, (3) select the resource via the registry, (4) execute
// remotely, (5) present the model and verify it with a held-out test set —
// then plots the per-algorithm accuracies with the GNUPlot-substitute Plot
// service.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/soap"
)

func main() {
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Stage 1: data selection (with a 66/34 split for later verification).
	full := datagen.BreastCancer()
	train, test, err := dataset.StratifiedSplit(full, 0.66, rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1: %s, %d train / %d test\n", full.Relation,
		train.NumInstances(), test.NumInstances())

	// Stage 2: algorithm selection from the live service, through the
	// typed client rather than raw SOAP parts.
	client := core.NewClient(dep.BaseURL)
	offered, err := client.Classifiers(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2: service offers %d algorithms\n", len(offered))
	candidates := []string{"ZeroR", "OneR", "NaiveBayes", "J48"}

	// Stage 3: resource selection via the registry.
	entry, ok := dep.Registry.Get("Classifier")
	if !ok {
		log.Fatal("Classifier not registered")
	}
	fmt.Printf("stage 3: resource %s\n", entry.Endpoint)

	// Stages 4-5: execute each candidate remotely (TrainAt against the
	// registry-selected endpoint), then verify locally on the held-out
	// share.
	var plotPoints strings.Builder
	for i, name := range candidates {
		if _, err := client.TrainAt(context.Background(), entry.Endpoint, core.TrainOptions{
			Dataset: train, Classifier: name, Class: "Class",
		}); err != nil {
			log.Fatalf("remote %s: %v", name, err)
		}
		c, err := classify.New(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Train(train); err != nil {
			log.Fatal(err)
		}
		ev, err := classify.NewEvaluation(test)
		if err != nil {
			log.Fatal(err)
		}
		if err := ev.TestModel(c, test); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stage 4/5: %-12s held-out accuracy %.3f kappa %.3f\n",
			name, ev.Accuracy(), ev.Kappa())
		fmt.Fprintf(&plotPoints, "%d,%.4f\n", i, ev.Accuracy())
	}

	// Visualise the comparison via the Plot Web Service.
	plot, err := soap.CallContext(context.Background(), dep.EndpointURL("Plot"), "plot",
		map[string]string{"points": plotPoints.String()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nheld-out accuracy by algorithm index (Plot service):")
	fmt.Print(plot["plot"])
}
