// Streaming demonstrates §3's remote-data requirement: "the framework
// should allow the streaming of data from a remote machine along with the
// capability to process the data locally". A TCP server streams the
// breast-cancer dataset as ARFF; an incremental NaiveBayes consumes it
// instance by instance without materialising the dataset, then matches the
// batch-trained model.
package main

import (
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/datagen"
	"repro/internal/stream"
)

func main() {
	d := datagen.BreastCancer()

	// The "remote machine" holding the data.
	ln, err := stream.Listen("127.0.0.1:0", d)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("streaming %s from %s\n", d.Relation, ln.Addr())

	// The local consumer: an updateable learner fed one instance at a time.
	r, closer, err := stream.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()
	nb := &classify.NaiveBayes{}
	if err := nb.Begin(r.Schema()); err != nil {
		log.Fatal(err)
	}
	n, err := stream.Feed(r, nb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d instances into an incremental NaiveBayes\n", n)

	// The streamed model matches batch training on the same data.
	batch := &classify.NaiveBayes{}
	if err := batch.Train(d); err != nil {
		log.Fatal(err)
	}
	agree := 0
	for _, in := range d.Instances {
		a, err := classify.Predict(nb, in)
		if err != nil {
			log.Fatal(err)
		}
		b, err := classify.Predict(batch, in)
		if err != nil {
			log.Fatal(err)
		}
		if a == b {
			agree++
		}
	}
	fmt.Printf("streamed vs batch model agreement: %d/%d predictions\n", agree, d.NumInstances())

	ev, err := classify.NewEvaluation(d)
	if err != nil {
		log.Fatal(err)
	}
	if err := ev.TestModel(nb, d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed-model training accuracy: %.3f\n", ev.Accuracy())
}
