// Database demonstrates the OGSA-DAI-style integration the paper names as
// work underway (§5.4): a relational resource exposed as a Web Service is
// queried, the result is filtered, association rules are mined from it,
// and a classifier is trained — all over SOAP, composing four services.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/soap"
)

func main() {
	dep, err := core.Deploy("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	da := dep.EndpointURL("DataAccess")

	// Discover the relational resources.
	out, err := soap.CallContext(context.Background(), da, "listTables", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tables: %s\n", strings.ReplaceAll(out["tables"], "\n", ", "))

	out, err = soap.CallContext(context.Background(), da, "describe", map[string]string{"table": "breast_cancer"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschema of breast_cancer:")
	fmt.Println(out["schema"])

	// Query: tumours with node capsule involvement, projected to the
	// clinically interesting columns.
	out, err = soap.CallContext(context.Background(), da, "query", map[string]string{
		"table":   "breast_cancer",
		"columns": "age,menopause,deg-malig,irradiat,Class",
		"where":   "node-caps=yes",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query node-caps=yes returned %s rows\n", out["rows"])

	// Mine association rules from the query result.
	rules, err := soap.CallContext(context.Background(), dep.EndpointURL("AssociationRules"), "mine", map[string]string{
		"dataset":       out["arff"],
		"minSupport":    "0.15",
		"minConfidence": "0.85",
		"maxRules":      "8",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop association rules among node-caps=yes cases (%s total):\n%s\n",
		rules["ruleCount"], rules["rules"])

	// Train a classifier on the full table pulled through the same service.
	full, err := soap.CallContext(context.Background(), da, "query", map[string]string{"table": "breast_cancer"})
	if err != nil {
		log.Fatal(err)
	}
	model, err := soap.CallContext(context.Background(), dep.EndpointURL("Classifier"), "classifyInstance", map[string]string{
		"dataset":    full["arff"],
		"classifier": "NaiveBayes",
		"attribute":  "Class",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NaiveBayes on the full table: accuracy %s\n", model["accuracy"])
}
