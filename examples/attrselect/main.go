// Attrselect reproduces §5.3's closing remark: "the attribute selection
// process can also be automated through the use of a genetic search
// service". It ranks the breast-cancer attributes with several evaluators
// and then runs the genetic search over CFS subsets, confirming that the
// automated choice recovers node-caps — the attribute C4.5 places at the
// root of the Figure-4 tree.
package main

import (
	"fmt"
	"log"

	"repro/internal/attrsel"
	"repro/internal/datagen"
)

func main() {
	d := datagen.BreastCancer()

	fmt.Printf("the toolkit offers %d attribute-selection approaches, e.g.:\n", len(attrsel.Approaches()))
	for _, a := range attrsel.Approaches()[:6] {
		fmt.Println("  " + a)
	}

	fmt.Println("\n== Rankings ==")
	for _, name := range []string{"InfoGain", "GainRatio", "ChiSquared", "ReliefF"} {
		ev, err := attrsel.NewAttributeEvaluator(name)
		if err != nil {
			log.Fatal(err)
		}
		r, err := attrsel.RankAttributes(ev, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s", name)
		for i := 0; i < 3; i++ {
			fmt.Printf("  %s(%.3f)", r.Names[i], r.Merits[i])
		}
		fmt.Println()
	}

	fmt.Println("\n== Genetic search over CFS subsets (§5.3) ==")
	cols, err := attrsel.GeneticSearch{Population: 24, Generations: 20, Seed: 7}.Search(&attrsel.CFS{}, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("selected attributes:")
	for _, c := range cols {
		fmt.Printf(" %s", d.Attrs[c].Name)
	}
	fmt.Println()

	// Compare against best-first search on the same evaluator.
	bf, err := attrsel.BestFirst{MaxStale: 5}.Search(&attrsel.CFS{}, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("best-first selects:  ")
	for _, c := range bf {
		fmt.Printf(" %s", d.Attrs[c].Name)
	}
	fmt.Println()
}
