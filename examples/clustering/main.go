// Clustering exercises the second service family of §4.1: Cobweb (with its
// concept-hierarchy graph), k-means, EM and hierarchical clustering, with
// the toolkit's cluster visualisers.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/viz"
)

func main() {
	// Cobweb over the nominal weather data — the paper's named example.
	weather := datagen.Weather()
	cw := &cluster.Cobweb{Acuity: 1.0, Cutoff: 0.0028}
	if err := cw.Build(weather); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Cobweb concept hierarchy (getCobwebGraph) ==")
	fmt.Print(cw.GraphString())
	fmt.Println("as DOT for the tree plotter:")
	fmt.Print(viz.CobwebDOT(cw.Root()))

	// k-means and EM over planted Gaussians, evaluated against the ground
	// truth.
	gauss := datagen.GaussianClusters(3, 300, 2, 10, 1)
	for _, c := range []cluster.Clusterer{
		&cluster.KMeans{K: 3, MaxIter: 100, Seed: 1},
		&cluster.EM{K: 3, MaxIter: 60, Seed: 1, Tol: 1e-6},
		&cluster.FarthestFirst{K: 3, Seed: 1},
	} {
		if err := c.Build(gauss); err != nil {
			log.Fatal(err)
		}
		assign, err := cluster.Assignments(c, gauss)
		if err != nil {
			log.Fatal(err)
		}
		purity, err := cluster.Purity(gauss, assign, c.NumClusters())
		if err != nil {
			log.Fatal(err)
		}
		sse, err := cluster.SSE(gauss, assign, c.NumClusters())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\npurity %.3f, SSE %.1f\n", c.Name(), purity, sse)
		fmt.Print(viz.ClusterSummary(assign, c.NumClusters()))
	}

	// Hierarchical clustering with a dendrogram, the Cluster Visualizer's
	// agglomerative view.
	small := datagen.GaussianClusters(2, 16, 2, 8, 2)
	h := &cluster.Hierarchical{K: 2, Linkage: cluster.AverageLink}
	if err := h.Build(small); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Hierarchical dendrogram ==")
	fmt.Print(viz.Dendrogram(h.Merges(), small.NumInstances()))
}
